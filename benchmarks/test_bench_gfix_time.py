"""Experiment E-gfixtime: GFix execution-time breakdown (§5.3).

Paper: GFix averages 90 s per patch, ~98% of it spent in preprocessing
(SSA conversion, call graph, alias analysis); the transformation itself
takes 1.9 s on average, and the largest apps take the longest. We measure
the same phases on corpus applications of different sizes.
"""

from __future__ import annotations

import statistics
import time

import pytest

from benchmarks.conftest import record_report
from repro.corpus.apps import corpus_app
from repro.detector.gcatch import run_gcatch
from repro.fixer.dispatcher import GFix
from repro.obs import Collector, render_stats
from repro.report.table import render_simple

APPS = ["bbolt", "gRPC", "Docker", "Kubernetes"]


def test_gfix_time_breakdown(benchmark):
    collector = Collector("gfix-time")

    def measure(app_name: str):
        app = corpus_app(app_name)
        program = app.program()
        result = run_gcatch(program)
        start = time.perf_counter()
        gfix = GFix(program, app.source, collector=collector)
        preprocess = time.perf_counter() - start
        transforms = []
        for report in result.bmoc.bmoc_channel_bugs():
            start = time.perf_counter()
            gfix.fix(report)
            transforms.append(time.perf_counter() - start)
        return preprocess, transforms

    def run_all():
        return {name: measure(name) for name in APPS}

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    fractions = []
    for name in APPS:
        preprocess, transforms = measured[name]
        if not transforms:
            continue
        avg_transform = statistics.mean(transforms)
        total = preprocess + avg_transform
        fraction = preprocess / total * 100.0
        fractions.append(fraction)
        rows.append(
            [
                name,
                f"{preprocess * 1000:.1f}",
                f"{avg_transform * 1000:.2f}",
                f"{fraction:.1f}%",
            ]
        )
    rows.append(["(paper)", "~98% of ~90s", "1.9s avg", "98%"])
    record_report(
        "GFix time: preprocessing vs transformation (§5.3)",
        render_simple(["app", "preprocess ms", "avg transform ms", "preprocess share"], rows),
    )
    record_report(
        "GFix per-phase cost across apps (repro.obs)",
        render_stats(collector),
    )

    # the shape: preprocessing dominates patch generation
    assert statistics.mean(fractions) > 60.0
    # bigger applications take longer to preprocess
    assert measured["Kubernetes"][0] > measured["bbolt"][0]
