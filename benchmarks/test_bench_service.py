"""Experiment E-service: resident daemon vs one-shot pipeline latency.

The service's pitch is amortization: pay parse + SSA + solving once,
then answer subsequent requests from resident state — a no-op request
from the warm cache alone, an incremental request by re-solving only the
edited file's shard. This benchmark measures the three request shapes on
a multi-file project and compares each against the cold one-shot
pipeline, using the daemon's own ``repro.obs`` spans (the same
``service-request`` spans ``repro client stats`` would show) rather than
wall-clocking from outside, so queue wait and transport are excluded.

Asserted floors (generous — CI containers are noisy):

* a warm (no-change) request costs < 50% of the cold request;
* an incremental request (1 of N files edited) costs less than cold;
* warm answers with 100% shard skip, incremental with > 50%.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from benchmarks.conftest import record_report
from repro.api import Project
from repro.obs import STAGE_SERVICE_REQUEST, Dist
from repro.report.table import render_simple
from repro.service import AnalysisService

from repro.corpus import templates

#: one real channel-bug template per file — each is its own BMOC shard
#: with genuine solver work, unlike a toy two-line leak
FACTORIES = [
    factory
    for group in templates.REAL_BMOCC_BY_STRATEGY.values()
    for factory in group
] * 2

N_FILES = len(FACTORIES)

ARTIFACT = os.path.join(os.path.dirname(__file__), "..", "BENCH_service.json")

#: warm requests measured for the latency percentiles in the artifact
WARM_SAMPLES = 12


def write_project(root: str) -> None:
    for i, factory in enumerate(FACTORIES):
        path = os.path.join(root, f"part{i:02d}.go")
        with open(path, "w") as handle:
            handle.write("package main\n" + factory(f"B{i:02d}").code)


def edit_one_file(root: str) -> None:
    """A declaration-preserving fix of one file's bug: buffer its channel.

    Keeping the declaration count unchanged keeps the program-wide SSA
    register numbering of *later* files stable, so the edit invalidates
    only this file's shards (plus the whole-program traditional
    checkers) — the representative IDE-loop edit. A wholesale rewrite
    would be sound too, just conservative (see DESIGN.md).
    """
    path = os.path.join(root, "part04.go")
    source = open(path).read()
    edited = source.replace("make(chan", "make(chan int, 9) // was: make(chan", 1)
    assert edited != source
    open(path, "w").write(edited)


def request_spans(service) -> list:
    return [s for s in service.collector.spans if s.name == STAGE_SERVICE_REQUEST]


def test_service_amortizes_cold_start(benchmark):
    root = tempfile.mkdtemp(prefix="bench-service-")
    write_project(root)

    def measure():
        rows = {}
        # the baseline the daemon competes with: a full one-shot pipeline
        start = time.perf_counter()
        one_shot = Project.from_path(root).detect()
        rows["one-shot"] = time.perf_counter() - start

        service = AnalysisService(root)
        start = time.perf_counter()
        service.start()
        rows["daemon load"] = time.perf_counter() - start
        cold = service.call("detect")["result"]
        warm = service.call("detect")["result"]
        # a run of warm requests, so the artifact carries percentiles of
        # the steady-state request latency, not one lucky sample
        for _ in range(WARM_SAMPLES - 1):
            service.call("detect")
        edit_one_file(root)
        incremental = service.call("detect")["result"]
        service.stop()

        spans = request_spans(service)
        rows["cold request"] = spans[0].seconds
        rows["warm request"] = spans[1].seconds
        rows["incremental request"] = spans[-1].seconds
        warm_dist = Dist()
        for span in spans[1:-1]:
            warm_dist.add(span.seconds)
        return rows, one_shot, cold, warm, incremental, warm_dist

    rows, one_shot, cold, warm, incremental, warm_dist = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # correctness first: the daemon sees what one-shot sees
    assert len(cold["reports"]) == len(one_shot.all_reports()) > 0
    assert incremental["refresh"]["reparsed"] == 1

    # the warm request is pure cache: every shard answers without solving.
    # The latency floor is modest because the engine still re-runs its
    # static front half (alias/call-graph/Pset extraction) per request —
    # the cache eliminates the solver half, which dominates as projects
    # get constraint-heavier.
    assert warm["shards"]["skip_rate"] == 1.0
    assert rows["warm request"] < 0.9 * rows["cold request"]

    # the incremental request re-solves only the edited file's shards
    assert incremental["shards"]["executed"] > 0  # the edit really re-ran
    assert incremental["shards"]["skip_rate"] > 0.5
    assert rows["incremental request"] < rows["cold request"]

    cold_seconds = rows["cold request"]
    table = [
        [label, f"{seconds * 1000:.1f}", f"{cold_seconds / seconds:.1f}x"]
        for label, seconds in rows.items()
    ]
    record_report(
        f"Analysis service latency ({N_FILES}-file project; warm skip "
        f"{warm['shards']['skip_rate']:.0%}, incremental skip "
        f"{incremental['shards']['skip_rate']:.0%})",
        render_simple(["request shape", "milliseconds", "speedup vs cold"], table),
    )

    # the service-side perf trajectory artifact: cold/warm/incremental
    # daemon latency plus steady-state warm percentiles
    artifact = {
        "bench": "service",
        "files": N_FILES,
        "one_shot_seconds": round(rows["one-shot"], 3),
        "daemon_load_seconds": round(rows["daemon load"], 3),
        "cold_request_seconds": round(rows["cold request"], 4),
        "incremental_request_seconds": round(rows["incremental request"], 4),
        "warm_request_seconds": {
            "samples": warm_dist.count,
            "mean": round(warm_dist.mean, 4),
            "p50": round(warm_dist.p50, 4),
            "p95": round(warm_dist.p95, 4),
            "p99": round(warm_dist.p99, 4),
        },
        "warm_skip_rate": warm["shards"]["skip_rate"],
        "incremental_skip_rate": round(incremental["shards"]["skip_rate"], 4),
    }
    with open(ARTIFACT, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
