"""Experiment E-service: resident daemon vs one-shot pipeline latency.

The service's pitch is amortization: pay parse + SSA + solving once,
then answer subsequent requests from resident state — a no-op request
from the warm cache alone, an incremental request by re-solving only the
edited file's shard. This benchmark measures the three request shapes on
a multi-file project and compares each against the cold one-shot
pipeline, using the daemon's own ``repro.obs`` spans (the same
``service-request`` spans ``repro client stats`` would show) rather than
wall-clocking from outside, so queue wait and transport are excluded.

Asserted floors (generous — CI containers are noisy):

* a warm (no-change) request costs < 50% of the cold request;
* an incremental request (1 of N files edited) costs less than cold;
* warm answers with 100% shard skip, incremental with > 50%.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from benchmarks.conftest import record_report
from repro.api import Project
from repro.obs import STAGE_SERVICE_REQUEST, Dist
from repro.report.table import render_simple
from repro.service import AnalysisService

from repro.corpus import templates

#: one real channel-bug template per file — each is its own BMOC shard
#: with genuine solver work, unlike a toy two-line leak
FACTORIES = [
    factory
    for group in templates.REAL_BMOCC_BY_STRATEGY.values()
    for factory in group
] * 2

N_FILES = len(FACTORIES)

ARTIFACT = os.path.join(os.path.dirname(__file__), "..", "BENCH_service.json")

#: warm requests measured for the latency percentiles in the artifact
WARM_SAMPLES = 12


def write_project(root: str) -> None:
    for i, factory in enumerate(FACTORIES):
        path = os.path.join(root, f"part{i:02d}.go")
        with open(path, "w") as handle:
            handle.write("package main\n" + factory(f"B{i:02d}").code)


def edit_one_file(root: str) -> None:
    """A declaration-preserving fix of one file's bug: buffer its channel.

    Keeping the declaration count unchanged keeps the program-wide SSA
    register numbering of *later* files stable, so the edit invalidates
    only this file's shards (plus the whole-program traditional
    checkers) — the representative IDE-loop edit. A wholesale rewrite
    would be sound too, just conservative (see DESIGN.md).
    """
    path = os.path.join(root, "part04.go")
    source = open(path).read()
    edited = source.replace("make(chan", "make(chan int, 9) // was: make(chan", 1)
    assert edited != source
    open(path, "w").write(edited)


def request_spans(service) -> list:
    return [s for s in service.collector.spans if s.name == STAGE_SERVICE_REQUEST]


def test_service_amortizes_cold_start(benchmark):
    root = tempfile.mkdtemp(prefix="bench-service-")
    write_project(root)

    def measure():
        rows = {}
        # the baseline the daemon competes with: a full one-shot pipeline
        start = time.perf_counter()
        one_shot = Project.from_path(root).detect()
        rows["one-shot"] = time.perf_counter() - start

        service = AnalysisService(root)
        start = time.perf_counter()
        service.start()
        rows["daemon load"] = time.perf_counter() - start
        cold = service.call("detect")["result"]
        warm = service.call("detect")["result"]
        # a run of warm requests, so the artifact carries percentiles of
        # the steady-state request latency, not one lucky sample
        for _ in range(WARM_SAMPLES - 1):
            service.call("detect")
        edit_one_file(root)
        incremental = service.call("detect")["result"]
        service.stop()

        spans = request_spans(service)
        rows["cold request"] = spans[0].seconds
        rows["warm request"] = spans[1].seconds
        rows["incremental request"] = spans[-1].seconds
        warm_dist = Dist()
        for span in spans[1:-1]:
            warm_dist.add(span.seconds)
        return rows, one_shot, cold, warm, incremental, warm_dist

    rows, one_shot, cold, warm, incremental, warm_dist = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # correctness first: the daemon sees what one-shot sees
    assert len(cold["reports"]) == len(one_shot.all_reports()) > 0
    assert incremental["refresh"]["reparsed"] == 1

    # the warm request is pure cache: every shard answers without solving.
    # The latency floor is modest because the engine still re-runs its
    # static front half (alias/call-graph/Pset extraction) per request —
    # the cache eliminates the solver half, which dominates as projects
    # get constraint-heavier.
    assert warm["shards"]["skip_rate"] == 1.0
    assert rows["warm request"] < 0.9 * rows["cold request"]

    # the incremental request re-solves only the edited file's shards
    assert incremental["shards"]["executed"] > 0  # the edit really re-ran
    assert incremental["shards"]["skip_rate"] > 0.5
    assert rows["incremental request"] < rows["cold request"]

    cold_seconds = rows["cold request"]
    table = [
        [label, f"{seconds * 1000:.1f}", f"{cold_seconds / seconds:.1f}x"]
        for label, seconds in rows.items()
    ]
    record_report(
        f"Analysis service latency ({N_FILES}-file project; warm skip "
        f"{warm['shards']['skip_rate']:.0%}, incremental skip "
        f"{incremental['shards']['skip_rate']:.0%})",
        render_simple(["request shape", "milliseconds", "speedup vs cold"], table),
    )

    # the service-side perf trajectory artifact: cold/warm/incremental
    # daemon latency plus steady-state warm percentiles
    artifact = {
        "bench": "service",
        "files": N_FILES,
        "one_shot_seconds": round(rows["one-shot"], 3),
        "daemon_load_seconds": round(rows["daemon load"], 3),
        "cold_request_seconds": round(rows["cold request"], 4),
        "incremental_request_seconds": round(rows["incremental request"], 4),
        "warm_request_seconds": {
            "samples": warm_dist.count,
            "mean": round(warm_dist.mean, 4),
            "p50": round(warm_dist.p50, 4),
            "p95": round(warm_dist.p95, 4),
            "p99": round(warm_dist.p99, 4),
        },
        "warm_skip_rate": warm["shards"]["skip_rate"],
        "incremental_skip_rate": round(incremental["shards"]["skip_rate"], 4),
    }
    with open(ARTIFACT, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")


# -- overload behavior under a multi-tenant burst ---------------------------

BUGGY_SNIPPET = (
    "package main\n\nfunc main() {\n\tch := make(chan int)\n"
    "\tgo func() {\n\t\tch <- 1\n\t}()\n}\n"
)


def test_service_overload_shedding(tmp_path_factory):
    """Experiment E-service-overload: a 200-request burst from three
    tenants against a bounded queue and per-tenant quotas. Measures the
    shed rate and the per-tenant served p95, and appends both to the
    ``BENCH_service.json`` artifact."""
    from repro.obs import summarize
    from repro.service import Request

    root = tmp_path_factory.mktemp("bench-overload")
    paths = {}
    for tenant in ("default", "t1", "t2"):
        d = root / tenant
        d.mkdir()
        (d / "main.go").write_text(BUGGY_SNIPPET)
        paths[tenant] = str(d / "main.go")
    journal_path = str(root / "journal.jsonl")
    service = AnalysisService(
        paths["default"],
        workers=2,
        max_queue=16,
        quota=40.0,
        quota_burst=20.0,
        journal_path=journal_path,
    ).start()
    try:
        for tenant in ("t1", "t2"):
            response = service.call("register", {"tenant": tenant, "path": paths[tenant]})
            assert "error" not in response, response
        service.call("detect")  # warm the shared cache once
        start = time.perf_counter()
        futures = [
            service.queue.submit(
                Request(id=i, method="detect", tenant=("default", "t1", "t2")[i % 3])
            )
            for i in range(200)
        ]
        served = shed = 0
        for future in futures:
            response = future.result(timeout=120)
            if "result" in response:
                served += 1
            else:
                assert response["error"]["code"] in (-32002, -32003), response
                shed += 1
        elapsed = time.perf_counter() - start
        health = service.call("health")["result"]
    finally:
        service.stop()

    assert served + shed == 200
    assert served > 0 and shed > 0  # the burst genuinely overloads
    assert health["health"] == "ok"  # shedding is not an incident

    records = [r for r in service.journal.read() if r["method"] == "detect"]
    assert len(records) == 201  # warmup + every burst request journaled
    summary = summarize(records)
    by_tenant = {
        tenant: {
            "served": per["served"],
            "sheds": per["sheds"],
            "p95_seconds": round(per["p95_seconds"] or 0.0, 4),
            "queue_wait_p95_seconds": round(per["queue_wait_p95_seconds"] or 0.0, 4),
        }
        for tenant, per in summary["by_tenant"].items()
    }
    record_report(
        f"Service overload burst (200 requests / 3 tenants: {served} served, "
        f"{shed} shed in {elapsed:.2f}s)",
        render_simple(
            ["tenant", "served", "shed", "p95 (ms)"],
            [
                [t, str(v["served"]), str(v["sheds"]), f"{v['p95_seconds'] * 1000:.1f}"]
                for t, v in sorted(by_tenant.items())
            ],
        ),
    )

    try:
        with open(ARTIFACT) as handle:
            artifact = json.load(handle)
    except (OSError, ValueError):
        artifact = {"bench": "service"}
    artifact["overload"] = {
        "burst_requests": 200,
        "workers": 2,
        "max_queue": 16,
        "served": served,
        "sheds": shed,
        "shed_rate": round(summary["shed_rate"], 4),
        "burst_seconds": round(elapsed, 3),
        "by_tenant": by_tenant,
    }
    with open(ARTIFACT, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
