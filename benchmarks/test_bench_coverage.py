"""Experiment E-cover: coverage on the public 49-bug set (§5.2).

Paper: GCatch detects 33 of the 49 BMOC bugs in the released bug set (67%),
missing the rest for four stated reasons. The harness runs the detector on
each bug and reports the per-reason tally.
"""

from __future__ import annotations

from collections import Counter

import pytest

from benchmarks.conftest import record_report
from repro.corpus.bugset import build_bug_set
from repro.detector.bmoc import detect_bmoc
from repro.report.table import render_simple
from repro.ssa.builder import build_program


@pytest.fixture(scope="module")
def bug_set():
    return build_bug_set()


def test_coverage_study(benchmark, bug_set):
    programs = [(case, build_program(case.source, case.case_id + ".go")) for case in bug_set]

    def run_all():
        return [(case, bool(detect_bmoc(program).reports)) for case, program in programs]

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)

    detected = sum(1 for _, got in outcomes if got)
    missed_reasons = Counter(
        case.miss_reason for case, got in outcomes if not got and case.miss_reason
    )
    rows = [
        ["detected", str(detected), "33 (67%)"],
        ["missed: critical section above LCA", str(missed_reasons.get("critical-section-above-lca", 0)), "2"],
        ["missed: needs dynamic value", str(missed_reasons.get("needs-dynamic-value", 0)), "3"],
        ["missed: unmodeled primitive", str(missed_reasons.get("unmodeled-primitive", 0)), "9"],
        ["missed: nil-channel data flow", str(missed_reasons.get("nil-channel-dataflow", 0)), "2"],
    ]
    record_report(
        "Coverage on the 49-bug public set (§5.2)",
        render_simple(["outcome", "measured", "paper"], rows),
    )

    assert detected == 33
    for case, got in outcomes:
        assert got == case.detectable, case.case_id
    assert missed_reasons == Counter(
        {
            "unmodeled-primitive": 9,
            "needs-dynamic-value": 3,
            "critical-section-above-lca": 2,
            "nil-channel-dataflow": 2,
        }
    )
