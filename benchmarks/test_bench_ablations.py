"""Design-choice ablations called out in DESIGN.md.

Two of GCatch's precision/recall trade-offs are parameters here:

* the loop-unroll bound (paper: 2; the source of 11 FPs *and* what keeps
  path enumeration finite);
* infeasible-path pruning over read-only conditions (paper: prevents a
  combinatorial class of FPs; its restriction to read-only variables causes
  9 of the remaining ones).

The ablation measures real-bug recall and FP counts across settings on a
corpus slice that contains both loop-sensitive and branch-sensitive seeds.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_report
from repro.corpus import templates as T
from repro.detector.bmoc import detect_bmoc
from repro.report.table import render_simple
from repro.ssa.builder import build_program

# a mixed slate: real bugs of each fix class + the two infeasible-path FP
# shapes + a loop-balanced clean program that only bounded unrolling flags
SLATE = [
    ("real", T.bmocc_s1_ctx),
    ("real", T.bmocc_s2_fatal),
    ("real", T.bmocc_s3_loop),
    ("real", T.bmocc_unfix_parent),
    ("fp", T.fp_nonreadonly),
    ("fp", T.fp_loop_unroll),
]


def _programs():
    out = []
    for i, (truth, factory) in enumerate(SLATE):
        instance = factory(f"Abl{i}")
        out.append((truth, build_program("package main\n" + instance.code, "abl.go")))
    return out


def _run(programs, max_loop_unroll: int, prune_infeasible: bool):
    real_found = fp_raised = 0
    for truth, program in programs:
        reports = detect_bmoc(
            program,
            max_loop_unroll=max_loop_unroll,
            prune_infeasible=prune_infeasible,
        ).reports
        if truth == "real" and reports:
            real_found += 1
        if truth == "fp" and reports:
            fp_raised += 1
    return real_found, fp_raised


def test_design_ablations(benchmark):
    programs = _programs()
    total_real = sum(1 for truth, _ in SLATE if truth == "real")

    def sweep():
        results = {}
        for unroll in (1, 2, 3):
            results[("unroll", unroll)] = _run(programs, unroll, True)
        results[("prune", False)] = _run(programs, 2, False)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for key, (real_found, fp_raised) in results.items():
        label = f"unroll={key[1]}" if key[0] == "unroll" else "no infeasible-path pruning"
        rows.append([label, f"{real_found}/{total_real}", str(fp_raised)])
    record_report(
        "Design ablations: loop-unroll bound and path pruning",
        render_simple(["configuration", "real bugs found", "FP programs flagged"], rows),
    )

    baseline_real, baseline_fp = results[("unroll", 2)]
    # the paper's configuration finds every seeded real bug
    assert baseline_real == total_real
    # disabling pruning can only add false positives, never lose real bugs
    noprune_real, noprune_fp = results[("prune", False)]
    assert noprune_real >= baseline_real
    assert noprune_fp >= baseline_fp
    # deeper unrolling never loses the seeded real bugs either
    assert results[("unroll", 3)][0] == total_real
