"""Extension experiment (paper §6): non-blocking misuse-of-channel bugs.

The paper proposes detecting send-on-closed-channel panics with a new bug
constraint (a send ordered after a close). This bench runs the implemented
extension over a mixed workload of racy and safe programs and cross-checks
every verdict against the runtime's panic oracle.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_report
from repro.detector.nonblocking import detect_nonblocking
from repro.report.table import render_simple
from repro.runtime.scheduler import explore_schedules
from repro.ssa.builder import build_program

CASES = [
    (
        "send/close race",
        True,
        "package main\nfunc main() {\n\tch := make(chan int, 1)\n"
        "\tgo func() {\n\t\tch <- 1\n\t}()\n\tclose(ch)\n}\n",
    ),
    (
        "double close race",
        True,
        "package main\nfunc main() {\n\tdone := make(chan struct{})\n"
        "\tgo func() {\n\t\tclose(done)\n\t}()\n\tclose(done)\n}\n",
    ),
    (
        "close after ordered send",
        False,
        "package main\nfunc main() {\n\tch := make(chan int)\n"
        "\tgo func() {\n\t\tch <- 1\n\t}()\n\t<-ch\n\tclose(ch)\n}\n",
    ),
    (
        "single close signal",
        False,
        "package main\nfunc main() {\n\tdone := make(chan struct{})\n"
        "\tgo func() {\n\t\tclose(done)\n\t}()\n\t<-done\n}\n",
    ),
    (
        "producer closes own channel",
        False,
        "package main\nfunc main() {\n\tch := make(chan int, 2)\n"
        "\tgo func() {\n\t\tch <- 1\n\t\tch <- 2\n\t\tclose(ch)\n\t}()\n"
        "\tfor v := range ch {\n\t\tprintln(v)\n\t}\n}\n",
    ),
]


def test_nonblocking_extension(benchmark):
    programs = [(name, expect, build_program(src, "nb.go")) for name, expect, src in CASES]

    def run_all():
        return [
            (name, expect, detect_nonblocking(program).reports, program)
            for name, expect, program in programs
        ]

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, expect, reports, program in outcomes:
        runs = explore_schedules(program, seeds=30, max_steps=5000)
        dynamic = sum(1 for r in runs if r.panicked)
        rows.append(
            [
                name,
                reports[0].category if reports else "-",
                f"{dynamic}/30",
                "bug" if expect else "safe",
            ]
        )
        # static verdict agrees with the seeded truth and the runtime oracle
        assert bool(reports) == expect, name
        assert (dynamic > 0) == expect, name
    record_report(
        "§6 extension: non-blocking channel misuse",
        render_simple(["program", "static verdict", "dynamic panics", "expected"], rows),
    )
