"""Experiment E-correct: automated validation of GFix's patches (§5.3 / §6).

Paper: "We confirm that all generated patches are correct, and that they
can fix the bugs without changing the original program semantics" — done
manually, with automation left to future work. Here the implemented
patch-testing framework validates every patch GFix generates on a corpus
slice: static re-detection, dynamic leak-freedom, and behaviour-set
preservation. Dynamic checks exhaustively enumerate the schedule space via
the systematic explorer; programs whose space exceeds the bound degrade to
seeded sampling (the "mode" column records which verdict each patch got).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_report
from repro.corpus.apps import corpus_app
from repro.fixer.validate import validate_patch
from repro.report.experiments import evaluate_app
from repro.report.table import render_simple

APPS = ["bbolt", "gRPC", "Prometheus"]


def test_all_patches_validate(benchmark):
    def validate_slice():
        rows = []
        for name in APPS:
            app = corpus_app(name)
            evaluation = evaluate_app(app)
            for fix in evaluation.fixes:
                if not fix.fixed:
                    continue
                instance = app.instance_for_function(
                    fix.report.primitive.site.function
                )
                if instance is None or instance.driver is None:
                    continue
                validation = validate_patch(
                    app.source, fix, entry=instance.driver, seeds=10
                )
                rows.append((name, instance.template, fix.strategy, validation))
        return rows

    rows = benchmark.pedantic(validate_slice, rounds=1, iterations=1)

    table = [
        [
            app_name,
            template,
            strategy,
            "yes" if v.static_clean else "NO",
            f"{v.patched_leaks}",
            f"{len(v.semantics_mismatches)}",
            f"exhaustive({v.schedules_run})" if v.exhaustive else f"sampled({v.schedules_run})",
            "CORRECT" if v.correct else "REJECTED",
        ]
        for app_name, template, strategy, v in rows
    ]
    record_report(
        "Automated patch validation (paper: all 124 correct, validated manually)",
        render_simple(
            [
                "app",
                "bug shape",
                "strategy",
                "static clean",
                "leaks",
                "mismatches",
                "mode",
                "verdict",
            ],
            table,
        ),
    )

    assert rows, "expected patches to validate"
    for app_name, template, strategy, validation in rows:
        assert validation.correct, f"{app_name}/{template}: {validation.render()}"
