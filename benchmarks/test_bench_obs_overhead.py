"""Experiment E-obs: the observability layer's no-op overhead.

The tracing/metrics layer (``repro.obs``) is threaded through every
pipeline stage, but observability is off by default: instrumented call
sites pay one truthiness check against the null collector. This benchmark
measures end-to-end BMOC detection over the corpus with observability off
(the shipped default) and with a live collector, and asserts the *active*
layer stays within 5% of baseline — so the default no-op path, which does
strictly less work, is within the budget a fortiori.

Min-of-N with interleaved rounds: alternating baseline/active rounds
cancels drift (thermal, cache, GC), and the per-mode minimum is the
standard low-noise estimator for "how fast can this go".
"""

from __future__ import annotations

import time

from benchmarks.conftest import record_report
from repro.corpus.apps import build_corpus
from repro.detector.bmoc import detect_bmoc
from repro.obs import Collector
from repro.report.table import render_simple

ROUNDS = 5
BUDGET = 1.05  # active tracing within 5% of the no-op default


def _detect_corpus(programs, collector=None) -> float:
    start = time.perf_counter()
    for program in programs:
        detect_bmoc(program, collector=collector)
    return time.perf_counter() - start


def test_obs_overhead_within_budget(benchmark):
    programs = [app.program() for app in build_corpus()]
    _detect_corpus(programs)  # warm caches before timing anything

    baseline_times, active_times = [], []

    def interleaved_rounds():
        for _ in range(ROUNDS):
            baseline_times.append(_detect_corpus(programs, collector=None))
            active_times.append(_detect_corpus(programs, collector=Collector("bench")))

    benchmark.pedantic(interleaved_rounds, rounds=1, iterations=1)

    baseline = min(baseline_times)
    active = min(active_times)
    ratio = active / baseline
    record_report(
        "Observability overhead: corpus detect, no-op vs active collector",
        render_simple(
            ["mode", "best of %d (s)" % ROUNDS],
            [
                ["no-op (default)", f"{baseline:.4f}"],
                ["active collector", f"{active:.4f}"],
                ["ratio", f"{ratio:.3f}"],
            ],
        ),
    )
    assert ratio <= BUDGET, (
        f"active observability costs {ratio:.3f}x the no-op default "
        f"(budget {BUDGET}x): baseline {baseline:.4f}s, active {active:.4f}s"
    )


def test_active_collector_actually_records(benchmark):
    """Sanity for the bench above: the active mode is not a silent no-op."""
    programs = [app.program() for app in build_corpus()]
    collector = Collector("bench-sanity")

    def run():
        for program in programs:
            detect_bmoc(program, collector=collector)

    benchmark.pedantic(run, rounds=1, iterations=1)
    totals = collector.stage_totals()
    assert "solve" in totals and "path-enum" in totals
    assert collector.counters.get("detect.channels", 0) > 0
