"""Experiment E-fuzz: generative differential fuzz campaign throughput.

One seeded campaign (seed 0, 200 programs — the acceptance campaign)
through the full generate → detect → explore → triage pipeline. The
numbers that matter for the perf trajectory land in ``BENCH_fuzz.json``
at the repo root: programs/sec (generator+oracle throughput), oracle
agreement rate, and the unexplained-disagreement count, which this
suite requires to be zero for the checked-in seed.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import record_report
from repro.fuzz import run_campaign
from repro.obs import Collector, render_stats

BENCH_SEED = 0
BENCH_COUNT = 200

ARTIFACT = os.path.join(os.path.dirname(__file__), "..", "BENCH_fuzz.json")


def test_fuzz_campaign_throughput(benchmark):
    collector = Collector("fuzz-bench")
    report = benchmark.pedantic(
        run_campaign,
        args=(BENCH_SEED, BENCH_COUNT),
        kwargs={"collector": collector},
        rounds=1,
        iterations=1,
    )

    record_report(
        f"Fuzz campaign seed={BENCH_SEED} count={BENCH_COUNT}",
        report.render(),
    )
    record_report("Fuzz campaign per-stage cost (repro.obs)", render_stats(collector))

    assert len(report.triages) == BENCH_COUNT
    assert report.crashes() == []
    assert report.unexplained() == []  # seed-0 findings are checked in already

    programs_per_sec = BENCH_COUNT / report.elapsed_seconds
    artifact = {
        "bench": "fuzz-campaign",
        "seed": BENCH_SEED,
        "count": BENCH_COUNT,
        "elapsed_seconds": round(report.elapsed_seconds, 3),
        "programs_per_sec": round(programs_per_sec, 1),
        "agreement_rate": round(report.agreement_rate, 4),
        "buckets": report.buckets(),
        "unexplained": len(report.unexplained()),
        "crashes": len(report.crashes()),
    }
    with open(ARTIFACT, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert programs_per_sec > 1  # the generator must not dominate the oracles
