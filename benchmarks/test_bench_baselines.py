"""Experiment §7: comparison against the baseline detectors.

Paper: the two static tool suites (vet, staticcheck) detect **0 of 149**
BMOC bugs and **20 of 119** traditional bugs — all of them Fatal-in-child-
goroutine cases — while Go's built-in dynamic deadlock detector only fires
on *global* deadlocks and therefore misses the leaked-goroutine symptom of
most BMOC bugs. The harness runs both baselines over the corpus and
contrasts them with GCatch.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_report
from repro.corpus.apps import build_corpus
from repro.detector.baselines import run_dynamic_deadlock_detector, run_static_suites
from repro.report.experiments import evaluate_corpus
from repro.report.table import render_simple


@pytest.fixture(scope="module")
def corpus_evaluation():
    return evaluate_corpus()


def test_static_suites_vs_gcatch(benchmark, corpus_evaluation):
    corpus = build_corpus()

    def run_suites():
        fatal = 0
        bmoc_overlap = 0
        for app in corpus:
            result = run_static_suites(app.program())
            fatal += len(result.fatal_reports)
            # does any suite report land on a seeded BMOC channel? (no)
            for report in result.reports:
                function = report.blocked_ops[0].function if report.blocked_ops else ""
                instance = app.instance_for_function(function)
                if instance is not None and instance.category.startswith("bmoc"):
                    bmoc_overlap += 1
        return fatal, bmoc_overlap

    fatal, bmoc_overlap = benchmark.pedantic(run_suites, rounds=1, iterations=1)

    gcatch_bmoc = sum(
        corpus_evaluation.totals()[key][0] for key in ("bmoc_c", "bmoc_m")
    )
    gcatch_traditional = sum(
        corpus_evaluation.totals()[key][0]
        for key in ("forget_unlock", "double_lock", "conflict_lock", "struct_field", "fatal")
    )
    rows = [
        ["BMOC bugs", str(gcatch_bmoc), str(bmoc_overlap), "149 vs 0"],
        ["traditional bugs", str(gcatch_traditional), str(fatal), "119 vs 20 (all Fatal)"],
    ]
    record_report(
        "vet/staticcheck-style suites vs GCatch (§7)",
        render_simple(["category", "GCatch", "static suites", "paper"], rows),
    )

    # the paper's comparison shape: suites find zero BMOC bugs, and what
    # they do find is exactly the Fatal-in-goroutine pattern
    assert bmoc_overlap == 0
    assert fatal == 26  # every seeded Fatal bug (paper: 20 of its 26)
    assert gcatch_bmoc == 149


def test_dynamic_detector_misses_partial_deadlocks(benchmark):
    from repro.corpus import templates as T

    # a leaked-child BMOC bug (Figure 1 shape): invisible to the runtime
    # detector because main survives
    instance = T.bmocc_s1_ctx("Dyn1")
    from repro.ssa.builder import build_program

    program = build_program("package main\n" + instance.code, "dyn.go")

    def run_detector():
        return run_dynamic_deadlock_detector(
            program, entry=instance.driver, seeds=30, max_steps=10_000
        )

    result = benchmark.pedantic(run_detector, rounds=1, iterations=1)

    rows = [
        ["schedules run", str(result.schedules)],
        ["global deadlocks flagged", str(result.global_deadlocks)],
        ["partial deadlocks (leaked child) missed", str(result.partial_deadlocks_missed)],
    ]
    record_report(
        "Go runtime deadlock detector on a Figure-1-style bug (§7)",
        render_simple(["metric", "value"], rows),
    )
    assert result.global_deadlocks == 0
    assert result.partial_deadlocks_missed > 0
