"""Experiments F1/F3/F4: the paper's figure examples end to end.

Figure 1 (Docker, Strategy I), Figure 3 (etcd, Strategy II) and Figure 4
(Go-Ethereum, Strategy III): detect the bug, synthesize the paper's patch,
and validate it dynamically. Figure 2 (the workflow diagram) is the
pipeline being benchmarked.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_report
from repro.api import Project
from repro.corpus.snippets import ALL_SNIPPETS
from repro.report.table import render_simple


@pytest.mark.parametrize("sn", ALL_SNIPPETS, ids=lambda s: s.name)
def test_figure_pipeline(benchmark, sn):
    def pipeline():
        project = Project.from_source(sn.source, sn.name + ".go")
        result = project.detect()
        bugs = result.bmoc.bmoc_channel_bugs()
        fix = project.fix(bugs[0])
        return project, bugs, fix

    project, bugs, fix = benchmark.pedantic(pipeline, rounds=3, iterations=1)

    assert len(bugs) == 1
    assert fix.strategy == sn.expected_strategy
    patched = project.apply_fix(fix)
    assert patched.detect().bmoc.reports == []
    entry = "main" if "main" in project.program.functions else sn.entry
    original_runs = project.stress(entry=entry, seeds=15, max_steps=20000)
    patched_runs = patched.stress(entry=entry, seeds=15, max_steps=20000)
    original_leaks = sum(r.blocked_forever for r in original_runs)
    patched_leaks = sum(r.blocked_forever for r in patched_runs)
    assert original_leaks > 0
    assert patched_leaks == 0

    record_report(
        f"{sn.figure}: {sn.name}",
        render_simple(
            ["metric", "value"],
            [
                ["blocking op", str(bugs[0].blocked_ops[0])],
                ["fix strategy", fix.strategy],
                ["patch lines changed", str(fix.patch.changed_lines())],
                ["original leaks (15 schedules)", str(original_leaks)],
                ["patched leaks (15 schedules)", str(patched_leaks)],
            ],
        )
        + "\n"
        + fix.patch.unified_diff(sn.name + ".go"),
    )
