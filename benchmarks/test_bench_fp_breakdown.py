"""Experiment E-fp: BMOC false-positive cause breakdown (§5.2).

Paper: the BMOC detector reports 51 false positives — 20 from infeasible
paths (9 unsatisfiable conditions + 11 loop-unroll miscounts), 17 from
alias-analysis limits (15 channels-through-channels + 2 slice-stored),
14 from call-graph limits. The corpus seeds FP inducers with exactly those
causes; this harness verifies the detector falls into each trap.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_report
from repro.report.experiments import evaluate_corpus
from repro.report.table import render_simple


@pytest.fixture(scope="module")
def corpus_evaluation():
    return evaluate_corpus()


def test_fp_breakdown(benchmark, corpus_evaluation):
    from repro.corpus.apps import corpus_app
    from repro.report.experiments import evaluate_app

    app = corpus_app("Go-Ethereum")  # the FP-heaviest application
    benchmark.pedantic(lambda: evaluate_app(app), rounds=1, iterations=1)

    causes = corpus_evaluation.fp_causes()
    per_template = {}
    for evaluation in corpus_evaluation.evaluations:
        for verdict in evaluation.bmoc_verdicts:
            if verdict.is_real or verdict.instance is None:
                continue
            per_template[verdict.instance.template] = (
                per_template.get(verdict.instance.template, 0) + 1
            )

    rows = [
        ["infeasible path", str(causes.get("infeasible-path", 0)), "20"],
        ["  - unsatisfiable conditions", str(per_template.get("fp_nonreadonly", 0) + per_template.get("fp_bmocm", 0)), "9"],
        ["  - loop unrolling miscounts", str(per_template.get("fp_loop_unroll", 0)), "11"],
        ["alias analysis", str(causes.get("alias-analysis", 0)), "17"],
        ["  - channel through channel", str(per_template.get("fp_chan_through_chan", 0)), "15"],
        ["  - channel stored in slice", str(per_template.get("fp_slice_store", 0)), "2"],
        ["call-graph analysis", str(causes.get("call-graph", 0)), "14"],
        ["total BMOC false positives", str(sum(causes.values())), "51"],
    ]
    record_report(
        "BMOC false positives by cause (§5.2)",
        render_simple(["cause", "measured", "paper"], rows),
    )

    assert causes == {"infeasible-path": 20, "alias-analysis": 17, "call-graph": 14}
    assert sum(causes.values()) == 51
