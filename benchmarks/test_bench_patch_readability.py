"""Experiment E-readab: patch readability — changed lines (§5.3).

Paper: GFix changes 2.67 lines on average; Strategy I patches change 1
line each, Strategy II 4 lines each, Strategy III 10.3 on average (max 16).
We compute the same statistic over every patch generated for the corpus.
"""

from __future__ import annotations

import statistics

import pytest

from benchmarks.conftest import record_report
from repro.report.experiments import evaluate_corpus
from repro.report.table import render_simple


@pytest.fixture(scope="module")
def corpus_evaluation():
    return evaluate_corpus()


def test_patch_readability(benchmark, corpus_evaluation):
    from repro.corpus.apps import corpus_app
    from repro.report.experiments import evaluate_app

    benchmark.pedantic(lambda: evaluate_app(corpus_app("bbolt")), rounds=2, iterations=1)

    per_strategy = {"buffer": [], "defer": [], "stop": []}
    for evaluation in corpus_evaluation.evaluations:
        for fix in evaluation.fixes:
            if fix.fixed:
                per_strategy[fix.strategy].append(fix.patch.changed_lines())

    all_counts = [c for counts in per_strategy.values() for c in counts]
    rows = [
        [
            "Strategy I (buffer)",
            str(len(per_strategy["buffer"])),
            f"{statistics.mean(per_strategy['buffer']):.2f}",
            "99 patches, 1 line each",
        ],
        [
            "Strategy II (defer)",
            str(len(per_strategy["defer"])),
            f"{statistics.mean(per_strategy['defer']):.2f}",
            "4 patches, 4 lines each",
        ],
        [
            "Strategy III (stop)",
            str(len(per_strategy["stop"])),
            f"{statistics.mean(per_strategy['stop']):.2f}",
            "21 patches, 10.3 lines avg (max 16)",
        ],
        [
            "all",
            str(len(all_counts)),
            f"{statistics.mean(all_counts):.2f}",
            "124 patches, 2.67 lines avg",
        ],
    ]
    record_report(
        "Patch readability: changed lines per strategy (§5.3)",
        render_simple(["strategy", "patches", "avg changed lines", "paper"], rows),
    )

    # shape assertions: counts match Table 1; line counts are in the
    # paper's regime (I=1 exactly, II small, III the largest)
    assert len(per_strategy["buffer"]) == 99
    assert len(per_strategy["defer"]) == 4
    assert len(per_strategy["stop"]) == 21
    assert all(c == 1 for c in per_strategy["buffer"])
    assert all(2 <= c <= 6 for c in per_strategy["defer"])
    assert all(5 <= c <= 16 for c in per_strategy["stop"])
    assert statistics.mean(per_strategy["buffer"]) < statistics.mean(
        per_strategy["defer"]
    ) < statistics.mean(per_strategy["stop"])
    assert statistics.mean(all_counts) < 4.0
