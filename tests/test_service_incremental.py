"""Incremental re-analysis correctness: the daemon must never trade
away one-shot fidelity.

The acceptance bar, corpus-wide: for every bugset case, the resident
daemon's reports are byte-identical to a cold one-shot run —

* on the first (cold) daemon request,
* after a no-op touch (mtime changed, bytes unchanged),
* after an edit **and revert** (content back to the original, answered
  from the content-addressed cache with zero solver work).

Plus the economics that make the daemon worth running: editing one file
of a many-file project re-solves only that file's shard — ≥90% of the
solver work answers warm, measured by the engine's own counters.
"""

import os

import pytest

from repro.api import Project
from repro.corpus.bugset import build_bug_set
from repro.service import AnalysisService

CASES = build_bug_set()

#: a harmless trailing declaration: changes file bytes and the function
#: set without touching any existing function's SSA digest
PROBE = "\nfunc __probe() {\n\tprintln(0)\n}\n"


def renders(result) -> list:
    return sorted(r.render() for r in result.all_reports())


def daemon_renders(payload: dict) -> list:
    return sorted(r["render"] for r in payload["reports"])


def ok(response):
    assert "error" not in response, response
    return response["result"]


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.case_id)
def test_daemon_parity_with_cold_one_shot(case, tmp_path):
    """cold == daemon == daemon-after-touch == daemon-after-edit-and-revert."""
    path = tmp_path / f"{case.case_id}.go"
    path.write_text(case.source)
    cold = renders(Project.from_path(str(path)).detect())

    service = AnalysisService(str(path)).start()
    try:
        first = ok(service.call("detect"))
        assert daemon_renders(first) == cold

        # no-op touch: new mtime, same bytes — nothing re-parses, every
        # shard answers warm
        os.utime(path, None)
        touched = ok(service.call("detect"))
        assert touched["refresh"]["noop"] is True
        assert touched["shards"]["skip_rate"] == 1.0
        assert daemon_renders(touched) == cold

        # edit (adds a function) ... the intermediate result must at
        # least keep every original report
        path.write_text(case.source + PROBE)
        edited = ok(service.call("detect"))
        assert edited["refresh"]["noop"] is False
        assert set(cold) <= set(daemon_renders(edited))

        # ... and revert: content-addressed fingerprints return to their
        # original values, so the answer comes from cache, byte-identical
        path.write_text(case.source)
        reverted = ok(service.call("detect"))
        assert daemon_renders(reverted) == cold
        assert reverted["shards"]["skip_rate"] == 1.0
    finally:
        service.stop()


LEAKY = """package main

func {name}() {{
\tch := make(chan int)
\tgo func() {{
\t\tch <- 1
\t}}()
}}
"""

FIXED = """package main

func {name}() {{
\tch := make(chan int, 1)
\tgo func() {{
\t\tch <- 1
\t}}()
}}
"""


class TestSolverSkipRate:
    """Editing 1 of N files re-solves ~1/N of the shard plan."""

    N_FILES = 12

    def _project(self, tmp_path):
        root = tmp_path / "many"
        root.mkdir()
        for i in range(self.N_FILES):
            (root / f"part{i:02d}.go").write_text(LEAKY.format(name=f"leak{i:02d}"))
        return root

    def _counters(self, service) -> dict:
        return ok(service.call("metrics"))["counters"]

    def test_edit_one_file_keeps_solver_mostly_warm(self, tmp_path):
        root = self._project(tmp_path)
        service = AnalysisService(str(root)).start()
        try:
            first = ok(service.call("detect"))
            assert len(first["reports"]) == self.N_FILES
            assert first["shards"]["total"] >= self.N_FILES
            before = self._counters(service)
            assert before.get("solver.calls", 0) > 0

            # fix exactly one file's bug
            (root / "part07.go").write_text(FIXED.format(name="leak07"))
            second = ok(service.call("detect"))
            assert len(second["reports"]) == self.N_FILES - 1
            assert second["refresh"]["reparsed"] == 1

            after = self._counters(service)
            solved = after.get("solver.calls", 0) - before.get("solver.calls", 0)
            skipped = after.get("cache.skipped-solver-calls", 0) - before.get(
                "cache.skipped-solver-calls", 0
            )
            assert solved > 0  # the edited shard really re-ran
            skip_rate = skipped / (skipped + solved)
            assert skip_rate >= 0.9, (
                f"incremental solver skip {skip_rate:.0%} "
                f"({skipped} skipped vs {solved} solved)"
            )
            # exactly the untouched per-primitive shards hit the cache
            hits = after.get("cache.hit", 0) - before.get("cache.hit", 0)
            assert hits == self.N_FILES - 1
            # the delta names the one invalidated primitive shard
            invalidated = second["delta"]["invalidated"]
            assert any("leak07" in key or "bmoc" in key for key in invalidated)
        finally:
            service.stop()
