"""Seeded property/fuzz testing over randomly composed corpus programs.

Each seed deterministically composes a MiniGo program out of the corpus
template factories (``repro.corpus.templates``) and checks two properties:

* **round-trip stability** — ``print_file(parse_file(src))`` is a fixpoint:
  printing the parse of printed output reproduces it byte-for-byte;
* **crash-freedom** — ``run_gcatch`` never raises, on the serial path and
  through the sharded engine, and the two agree on the report set.

On failure the seed and the generated source are printed so the case can
be replayed with ``compose(random.Random(seed))``.
"""

from __future__ import annotations

import random

import pytest

from repro.corpus import templates
from repro.detector.gcatch import run_gcatch
from repro.engine import ResultCache
from repro.golang.parser import parse_file
from repro.golang.printer import print_file
from repro.ssa.builder import build_program

FACTORIES = sorted(
    {
        factory
        for group in templates.REAL_BMOCC_BY_STRATEGY.values()
        for factory in group
    }
    | set(templates.BENIGN_TEMPLATES)
    | {
        factory
        for group in templates.FP_BMOCC_BY_CAUSE.values()
        for factory in group
    }
    | set(templates.TRADITIONAL_REAL.values())
    | set(templates.TRADITIONAL_FP.values())
    | set(templates.UNFIXABLE_BY_REASON.values())
    | {templates.bmocm_real, templates.fp_bmocm},
    key=lambda factory: factory.__name__,
)

SEEDS = list(range(24))


def compose(rng: random.Random) -> str:
    """Deterministically stitch 1-5 template instances into one program."""
    count = rng.randint(1, 5)
    parts = ["package main"]
    for i in range(count):
        factory = rng.choice(FACTORIES)
        parts.append(factory(f"F{i}").code.rstrip())
    return "\n\n".join(parts) + "\n"


def describe(seed: int, source: str) -> str:
    return f"failing seed: {seed}\n--- generated source ---\n{source}\n---"


@pytest.mark.parametrize("seed", SEEDS)
def test_printer_round_trip_is_a_fixpoint(seed):
    source = compose(random.Random(seed))
    printed = print_file(parse_file(source, f"fuzz{seed}.go"))
    reprinted = print_file(parse_file(printed, f"fuzz{seed}-2.go"))
    assert reprinted == printed, describe(seed, source)


@pytest.mark.parametrize("seed", SEEDS)
def test_detection_is_crash_free_and_engine_agrees(seed):
    source = compose(random.Random(seed))
    try:
        program = build_program(source, f"fuzz{seed}.go")
        serial = run_gcatch(program)
        engine = run_gcatch(program, jobs=2)
    except Exception:
        print(describe(seed, source))
        raise
    serial_ids = sorted(r.identity() for r in serial.all_reports())
    engine_ids = sorted(r.identity() for r in engine.all_reports())
    assert engine_ids == serial_ids, describe(seed, source)


@pytest.mark.parametrize("seed", SEEDS[::4])
def test_cached_detection_is_crash_free(seed):
    """The cache path (fingerprint + pickle round-trip) on fuzzed programs."""
    source = compose(random.Random(seed))
    cache = ResultCache()
    try:
        program = build_program(source, f"fuzz{seed}.go")
        cold = run_gcatch(program, jobs=2, cache=cache)
        warm = run_gcatch(program, jobs=2, cache=cache)
    except Exception:
        print(describe(seed, source))
        raise
    assert sorted(r.identity() for r in warm.all_reports()) == sorted(
        r.identity() for r in cold.all_reports()
    ), describe(seed, source)


def test_composition_is_deterministic_per_seed():
    for seed in SEEDS[:6]:
        assert compose(random.Random(seed)) == compose(random.Random(seed))
