"""Tests for the §6 extension: condition-variable modeling.

The paper's recipe: a Cond becomes an unbuffered channel — Wait() receives,
Signal() sends inside a select-with-default, Broadcast() is an (unrolled)
loop of such sends. The runtime implements real sync.Cond semantics so the
static verdicts can be cross-checked dynamically.
"""

from repro.detector.bmoc import detect_bmoc
from repro.runtime.scheduler import explore_schedules, run_program
from repro.ssa import ir
from tests.conftest import build


class TestCondLowering:
    def test_var_decl_and_methods(self):
        program = build(
            "func f() {\n\tvar c sync.Cond\n\tc.Wait()\n}\n"
            "func g() {\n\tvar d sync.Cond\n\td.Signal()\n\td.Broadcast()\n}"
        )
        f_instrs = list(program.functions["f"].instructions())
        assert any(isinstance(i, ir.MakeCond) for i in f_instrs)
        assert any(isinstance(i, ir.CondWait) for i in f_instrs)
        g_instrs = list(program.functions["g"].instructions())
        signals = [i for i in g_instrs if isinstance(i, ir.CondSignal)]
        assert len(signals) == 2
        assert signals[1].broadcast


class TestCondRuntime:
    def test_signal_wakes_one_waiter(self):
        result = run_program(
            build(
                "func main() {\n\tvar c sync.Cond\n\tdone := make(chan int, 1)\n"
                "\tgo func() {\n\t\tc.Wait()\n\t\tdone <- 1\n\t}()\n"
                "\ttime.Sleep(20)\n\tc.Signal()\n\tprintln(<-done)\n}"
            ),
            seed=0,
            max_steps=20000,
        )
        assert result.output == ["1"]
        assert not result.blocked_forever

    def test_broadcast_wakes_all(self):
        result = run_program(
            build(
                "func main() {\n\tvar c sync.Cond\n\tdone := make(chan int, 2)\n"
                "\tgo func() {\n\t\tc.Wait()\n\t\tdone <- 1\n\t}()\n"
                "\tgo func() {\n\t\tc.Wait()\n\t\tdone <- 2\n\t}()\n"
                "\ttime.Sleep(30)\n\tc.Broadcast()\n\t<-done\n\t<-done\n\tprintln(\"ok\")\n}"
            ),
            seed=0,
            max_steps=20000,
        )
        assert result.output == ["ok"]

    def test_lost_signal_leaks(self):
        # signals are not buffered: a Signal before the Wait parks is lost
        runs = explore_schedules(
            build(
                "func main() {\n\tvar c sync.Cond\n\tc.Signal()\n"
                "\tgo func() {\n\t\tc.Wait()\n\t}()\n\tprintln(\"bye\")\n}"
            ),
            seeds=10,
            max_steps=5000,
        )
        assert all(r.blocked_forever for r in runs)

    def test_wait_without_signal_deadlocks(self):
        result = run_program(
            build("func main() {\n\tvar c sync.Cond\n\tc.Wait()\n}"), seed=0
        )
        assert result.global_deadlock


class TestCondDetection:
    def test_circular_cond_channel_deadlock_detected(self):
        # child: Wait then send; parent: recv then Signal — circular wait.
        # The Cond joins the channel's Pset because Signal can unblock Wait.
        program = build(
            "func main() {\n\tvar c sync.Cond\n\tdone := make(chan int)\n"
            "\tgo func() {\n\t\tc.Wait()\n\t\tdone <- 1\n\t}()\n"
            "\t<-done\n\tc.Signal()\n}"
        )
        result = detect_bmoc(program)
        kinds = {op.kind for r in result.reports for op in r.blocked_ops}
        assert "condwait" in kinds and "recv" in kinds
        # and the deadlock is real on every schedule
        runs = explore_schedules(program, seeds=10, max_steps=5000)
        assert all(r.global_deadlock for r in runs)

    def test_cond_only_bug_not_analyzed(self):
        # GCatch iterates channels; a Cond-only blocking bug stays invisible
        # (the paper's unmodeled-primitive blind spot, partially lifted only
        # when a Cond entangles with a channel)
        program = build(
            "func main() {\n\tvar c sync.Cond\n"
            "\tgo func() {\n\t\tc.Wait()\n\t}()\n\tprintln(\"bye\")\n}"
        )
        assert detect_bmoc(program).reports == []

    def test_signal_loop_is_loop_unroll_false_positive(self):
        # an infinite signaller keeps the waiter safe dynamically, but the
        # bounded (twice) unrolling of the signal loop loses that — the same
        # mechanism as the paper's 11 loop-unroll false positives
        program = build(
            "func main() {\n\tvar c sync.Cond\n\tdone := make(chan int)\n"
            "\tgo func() {\n\t\tc.Wait()\n\t\tdone <- 1\n\t}()\n"
            "\tgo func() {\n\t\tfor {\n\t\t\tc.Signal()\n\t\t}\n\t}()\n"
            "\t<-done\n}"
        )
        result = detect_bmoc(program)
        assert result.reports  # known FP by bounded unrolling
        runs = explore_schedules(program, seeds=10, max_steps=5000)
        assert not any(r.blocked_forever for r in runs)
