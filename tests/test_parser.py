"""Unit tests for the MiniGo parser."""

import pytest

from repro.golang import ast_nodes as ast
from repro.golang.parser import ParseError, parse_file


def parse(body: str) -> ast.File:
    return parse_file("package main\n" + body)


def first_func(body: str) -> ast.FuncDecl:
    return parse(body).funcs[0]


class TestDeclarations:
    def test_package_clause(self):
        assert parse_file("package demo").package == "demo"

    def test_import_single_skipped(self):
        file = parse_file('package main\nimport "sync"\nfunc f() {\n}')
        assert file.funcs[0].name == "f"

    def test_import_block_skipped(self):
        file = parse_file('package main\nimport (\n"sync"\n"time"\n)\nfunc f() {\n}')
        assert file.funcs[0].name == "f"

    def test_func_with_params_and_result(self):
        fn = first_func("func add(a int, b int) int {\n\treturn a + b\n}")
        assert [p.name for p in fn.params] == ["a", "b"]
        assert len(fn.results) == 1

    def test_grouped_params_share_type(self):
        fn = first_func("func add(a, b int) int {\n\treturn a\n}")
        assert isinstance(fn.params[0].type, ast.NamedType)
        assert fn.params[0].type.name == "int"
        assert fn.params[1].type.name == "int"

    def test_multiple_results(self):
        fn = first_func("func two() (int, int) {\n\treturn 1, 2\n}")
        assert len(fn.results) == 2

    def test_method_receiver(self):
        fn = first_func("func (s *server) run() {\n}")
        assert fn.receiver is not None
        assert fn.full_name == "server.run"

    def test_struct_declaration(self):
        file = parse("type box struct {\n\tmu sync.Mutex\n\tn int\n}")
        decl = file.structs[0]
        assert decl.name == "box"
        assert [f.name for f in decl.fields] == ["mu", "n"]
        assert decl.fields[0].type.name == "mutex"

    def test_qualified_types_normalized(self):
        fn = first_func("func f(t *testing.T, ctx context.Context, wg *sync.WaitGroup) {\n}")
        names = []
        for param in fn.params:
            typ = param.type
            if isinstance(typ, ast.PointerType):
                typ = typ.elem
            names.append(typ.name)
        assert names == ["testing", "context", "waitgroup"]


class TestStatements:
    def test_short_decl(self):
        fn = first_func("func f() {\n\tx := 1\n}")
        stmt = fn.body.stmts[0]
        assert isinstance(stmt, ast.AssignStmt)
        assert stmt.is_decl

    def test_multi_assign_from_call(self):
        fn = first_func("func f() {\n\ta, b := g()\n}")
        stmt = fn.body.stmts[0]
        assert len(stmt.lhs) == 2

    def test_recv_with_ok(self):
        fn = first_func("func f(ch chan int) {\n\tv, ok := <-ch\n\tprintln(v, ok)\n}")
        stmt = fn.body.stmts[0]
        assert isinstance(stmt.rhs[0], ast.RecvExpr)

    def test_send_statement(self):
        fn = first_func("func f(ch chan int) {\n\tch <- 42\n}")
        assert isinstance(fn.body.stmts[0], ast.SendStmt)

    def test_var_decl_with_type(self):
        fn = first_func("func f() {\n\tvar mu sync.Mutex\n\tmu.Lock()\n}")
        stmt = fn.body.stmts[0]
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.type.name == "mutex"

    def test_if_else_chain(self):
        fn = first_func("func f(x int) {\n\tif x > 0 {\n\t} else if x < 0 {\n\t} else {\n\t}\n}")
        stmt = fn.body.stmts[0]
        assert isinstance(stmt.orelse, ast.IfStmt)
        assert isinstance(stmt.orelse.orelse, ast.Block)

    def test_infinite_for(self):
        fn = first_func("func f() {\n\tfor {\n\t\tbreak\n\t}\n}")
        stmt = fn.body.stmts[0]
        assert isinstance(stmt, ast.ForStmt)
        assert stmt.cond is None

    def test_while_style_for(self):
        fn = first_func("func f(n int) {\n\tfor n > 0 {\n\t\tn--\n\t}\n}")
        assert isinstance(fn.body.stmts[0].cond, ast.BinaryExpr)

    def test_three_clause_for(self):
        fn = first_func("func f() {\n\tfor i := 0; i < 10; i++ {\n\t}\n}")
        stmt = fn.body.stmts[0]
        assert stmt.init is not None
        assert stmt.post is not None

    def test_range_over_channel(self):
        fn = first_func("func f(ch chan int) {\n\tfor v := range ch {\n\t\tprintln(v)\n\t}\n}")
        stmt = fn.body.stmts[0]
        assert isinstance(stmt, ast.RangeStmt)
        assert stmt.var == "v"

    def test_go_statement(self):
        fn = first_func("func f() {\n\tgo func() {\n\t}()\n}")
        assert isinstance(fn.body.stmts[0], ast.GoStmt)

    def test_go_requires_call(self):
        with pytest.raises(ParseError):
            parse("func f() {\n\tgo 42\n}")

    def test_defer_close(self):
        fn = first_func("func f(ch chan int) {\n\tdefer close(ch)\n}")
        assert isinstance(fn.body.stmts[0], ast.DeferStmt)

    def test_return_values(self):
        fn = first_func("func f() (int, int) {\n\treturn 1, 2\n}")
        assert len(fn.body.stmts[0].values) == 2

    def test_inc_dec(self):
        fn = first_func("func f(x int) {\n\tx++\n\tx--\n}")
        assert fn.body.stmts[0].op == "++"
        assert fn.body.stmts[1].op == "--"


class TestSelect:
    def test_select_cases(self):
        fn = first_func(
            "func f(a chan int, b chan int) {\n"
            "\tselect {\n"
            "\tcase v := <-a:\n"
            "\t\tprintln(v)\n"
            "\tcase b <- 1:\n"
            "\tdefault:\n"
            "\t}\n"
            "}"
        )
        select = fn.body.stmts[0]
        assert isinstance(select, ast.SelectStmt)
        assert len(select.cases) == 3
        assert select.cases[2].comm is None  # default

    def test_select_recv_two_values(self):
        fn = first_func(
            "func f(a chan int) {\n\tselect {\n\tcase v, ok := <-a:\n\t\tprintln(v, ok)\n\t}\n}"
        )
        comm = fn.body.stmts[0].cases[0].comm
        assert isinstance(comm, ast.AssignStmt)
        assert len(comm.lhs) == 2


class TestExpressions:
    def test_precedence(self):
        fn = first_func("func f() int {\n\treturn 1 + 2*3\n}")
        expr = fn.body.stmts[0].values[0]
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_logical_operators(self):
        fn = first_func("func f(a bool, b bool) bool {\n\treturn a && b || !a\n}")
        expr = fn.body.stmts[0].values[0]
        assert expr.op == "||"

    def test_unary_recv_expr(self):
        fn = first_func("func f(ch chan int) int {\n\treturn <-ch\n}")
        assert isinstance(fn.body.stmts[0].values[0], ast.RecvExpr)

    def test_make_chan(self):
        fn = first_func("func f() {\n\tch := make(chan int)\n\tprintln(ch)\n}")
        make = fn.body.stmts[0].rhs[0]
        assert isinstance(make, ast.MakeExpr)
        assert isinstance(make.type, ast.ChanType)
        assert make.size is None

    def test_make_buffered_chan(self):
        fn = first_func("func f() {\n\tch := make(chan int, 4)\n\tprintln(ch)\n}")
        assert fn.body.stmts[0].rhs[0].size.value == 4

    def test_make_slice(self):
        fn = first_func("func f() {\n\ts := make([]chan int, 2)\n\tprintln(s)\n}")
        assert isinstance(fn.body.stmts[0].rhs[0].type, ast.SliceType)

    def test_unit_literal(self):
        fn = first_func("func f(ch chan struct{}) {\n\tch <- struct{}{}\n}")
        assert isinstance(fn.body.stmts[0].value, ast.UnitLit)

    def test_composite_literal_empty(self):
        fn = first_func("func f() {\n\ts := server{}\n\tprintln(s)\n}")
        assert isinstance(fn.body.stmts[0].rhs[0], ast.CompositeLit)

    def test_composite_literal_fields(self):
        fn = first_func("func f() {\n\ts := point{x: 1, y: 2}\n\tprintln(s)\n}")
        lit = fn.body.stmts[0].rhs[0]
        assert [name for name, _ in lit.fields] == ["x", "y"]

    def test_composite_not_confused_with_if_block(self):
        fn = first_func("func f(x int) {\n\tif x == y {\n\t\tprintln(x)\n\t}\n}")
        assert isinstance(fn.body.stmts[0], ast.IfStmt)

    def test_selector_and_call_chain(self):
        fn = first_func("func f(s *server) {\n\ts.mu.Lock()\n}")
        call = fn.body.stmts[0].expr
        assert isinstance(call, ast.CallExpr)
        assert call.func.name == "Lock"

    def test_index_expression(self):
        fn = first_func("func f(s []chan int) {\n\tc := s[0]\n\tprintln(c)\n}")
        assert isinstance(fn.body.stmts[0].rhs[0], ast.IndexExpr)

    def test_func_literal_immediately_invoked(self):
        fn = first_func("func f() {\n\tfunc() {\n\t\tprintln(1)\n\t}()\n}")
        call = fn.body.stmts[0].expr
        assert isinstance(call.func, ast.FuncLit)

    def test_nil_literal(self):
        fn = first_func("func f(x int) {\n\tif x == nil {\n\t}\n}")
        assert isinstance(fn.body.stmts[0].cond.right, ast.NilLit)


class TestErrors:
    def test_missing_package_ok(self):
        # package clause is optional in MiniGo for snippets
        file = parse_file("func f() {\n}")
        assert file.funcs[0].name == "f"

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("func f() {\n\tx := 1\n")

    def test_bad_toplevel(self):
        with pytest.raises(ParseError):
            parse("x := 1")

    def test_assignment_arity_reported_at_build(self):
        # the parser allows it; arity is a lowering-time error
        file = parse("func f() {\n\ta, b := 1\n}")
        assert file.funcs[0].name == "f"


class TestFigures:
    def test_figure1_parses(self, figure1_source):
        file = parse_file(figure1_source)
        assert {"Exec", "StdCopy", "main"} <= {f.name for f in file.funcs}

    def test_figure3_parses(self, figure3_source):
        file = parse_file(figure3_source)
        assert "TestRWDialer" in {f.name for f in file.funcs}

    def test_figure4_parses(self, figure4_source):
        file = parse_file(figure4_source)
        assert "Interactive" in {f.name for f in file.funcs}
