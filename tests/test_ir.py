"""Structural tests for the IR: uses/defs contracts and block/function APIs.

The analyses (read-only detection, alias constraints, side-effect checks)
rely on every instruction reporting its reads and writes accurately, so
each instruction kind is pinned here.
"""

from repro.ssa import ir


V = ir.Var
C = ir.Const


class TestUsesAndDefs:
    def test_make_chan(self):
        instr = ir.MakeChan(dst=V("ch"), elem_type="int", size=C(2))
        assert instr.defs() == [V("ch")]
        assert instr.uses() == [C(2)]

    def test_send(self):
        instr = ir.Send(chan=V("ch"), value=V("x"))
        assert instr.defs() == []
        assert set(instr.uses()) == {V("ch"), V("x")}

    def test_recv_with_ok(self):
        instr = ir.Recv(dst=V("v"), ok_dst=V("ok"), chan=V("ch"))
        assert instr.defs() == [V("v"), V("ok")]
        assert instr.uses() == [V("ch")]

    def test_recv_discard(self):
        instr = ir.Recv(dst=None, ok_dst=None, chan=V("ch"))
        assert instr.defs() == []

    def test_call(self):
        instr = ir.Call(dsts=[V("a"), V("b")], func_op=ir.FuncRef("f"), args=[V("x")])
        assert instr.defs() == [V("a"), V("b")]
        assert ir.FuncRef("f") in instr.uses()
        assert V("x") in instr.uses()

    def test_binop(self):
        instr = ir.BinOp(dst=V("t"), op="+", left=V("a"), right=C(1))
        assert instr.defs() == [V("t")]
        assert set(instr.uses()) == {V("a"), C(1)}

    def test_select_defs_cover_case_bindings(self):
        block = ir.Block("target")
        case = ir.SelectCase(kind="recv", chan=V("ch"), dst=V("v"), ok_dst=V("ok"), target=block)
        select = ir.Select(cases=[case])
        assert set(select.defs()) == {V("v"), V("ok")}
        assert V("ch") in select.uses()

    def test_select_successors(self):
        a, b, d = ir.Block("a"), ir.Block("b"), ir.Block("d")
        select = ir.Select(
            cases=[
                ir.SelectCase(kind="recv", chan=V("x"), target=a),
                ir.SelectCase(kind="send", chan=V("y"), value=C(1), target=b),
            ],
            default_target=d,
        )
        assert select.successors() == [a, b, d]

    def test_cond_jump_successors(self):
        t, f = ir.Block("t"), ir.Block("f")
        jump = ir.CondJump(cond=V("c"), true_block=t, false_block=f)
        assert jump.successors() == [t, f]

    def test_make_context_defs_include_cancel(self):
        instr = ir.MakeContext(dst=V("ctx"), cancel_dst=V("cancel"))
        assert set(instr.defs()) == {V("ctx"), V("cancel")}

    def test_cond_instrs(self):
        wait = ir.CondWait(cond=V("c"))
        assert wait.uses() == [V("c")]
        signal = ir.CondSignal(cond=V("c"), broadcast=True)
        assert signal.uses() == [V("c")]
        assert signal.broadcast


class TestBlocks:
    def test_append_after_terminate_rejected(self):
        block = ir.Block()
        block.terminate(ir.Return())
        try:
            block.append(ir.Println())
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_second_terminator_ignored(self):
        block = ir.Block()
        first = ir.Return()
        block.terminate(first)
        block.terminate(ir.Panic())
        assert block.terminator is first

    def test_all_instrs_includes_terminator(self):
        block = ir.Block()
        block.append(ir.Println())
        block.terminate(ir.Return())
        kinds = [type(i).__name__ for i in block.all_instrs()]
        assert kinds == ["Println", "Return"]


class TestFunction:
    def test_entry_is_first_block(self):
        func = ir.Function("f", params=[])
        first = func.new_block("entry")
        func.new_block("other")
        assert func.entry is first

    def test_reachable_excludes_orphans(self):
        func = ir.Function("f", params=[])
        entry = func.new_block("entry")
        orphan = func.new_block("orphan")
        entry.terminate(ir.Return())
        orphan.terminate(ir.Return())
        reachable = func.reachable_blocks()
        assert entry in reachable
        assert orphan not in reachable

    def test_program_kinds_attribute(self):
        from repro.golang.parser import parse_file

        file = parse_file("package main")
        program = ir.Program(file, {})
        assert program.kinds == {}
        assert program.filename == "<minigo>"


class TestOperandEquality:
    def test_vars_compare_by_name(self):
        assert V("x") == V("x")
        assert V("x") != V("y")

    def test_operands_hashable(self):
        assert len({V("x"), V("x"), C(1), C(1), ir.FuncRef("f")}) == 3

    def test_method_ref_distinct_from_func_ref(self):
        assert ir.MethodRef("Run") != ir.FuncRef("Run")
