"""Tests for the whole-program analyses: call graph, alias, primitives,
scope, and the dependency graph/disentangling policy."""

from repro.analysis.alias import run_alias_analysis
from repro.analysis.callgraph import build_call_graph, transitive_touchers
from repro.analysis.dependency import build_dependency_graph, compute_pset
from repro.analysis.primitives import find_primitives
from repro.analysis.scope import compute_all_scopes
from repro.ssa import ir
from tests.conftest import build


def analyze(source: str):
    prog = build(source)
    cg = build_call_graph(prog)
    alias = run_alias_analysis(prog, cg)
    pmap = find_primitives(prog, cg, alias)
    return prog, cg, alias, pmap


class TestCallGraph:
    def test_direct_calls(self):
        prog = build("func a() {\n\tb()\n}\nfunc b() {\n}")
        cg = build_call_graph(prog)
        assert "b" in cg.callees("a")
        assert "a" in cg.callers("b")

    def test_goroutine_spawn_is_edge(self):
        prog = build("func a() {\n\tgo b()\n}\nfunc b() {\n}")
        cg = build_call_graph(prog)
        assert "b" in cg.callees("a")

    def test_spawn_sites(self):
        prog = build("func a() {\n\tgo b()\n}\nfunc b() {\n}")
        cg = build_call_graph(prog)
        sites = cg.spawn_sites("a")
        assert len(sites) == 1
        assert sites[0][1] == "b"

    def test_reachability_transitive(self):
        prog = build("func a() {\n\tb()\n}\nfunc b() {\n\tc()\n}\nfunc c() {\n}")
        cg = build_call_graph(prog)
        assert cg.reachable_from("a") == {"a", "b", "c"}

    def test_ambiguous_method_dropped(self):
        prog = build(
            "type x struct {\n\tp int\n}\nfunc (v *x) Run(n int) {\n}\n"
            "type y struct {\n\tp int\n}\nfunc (v *y) Run(n int) {\n}\n"
            "func main(w interface{}) {\n\tw.Run(1)\n}"
        )
        cg = build_call_graph(prog)
        assert cg.ambiguous_sites
        assert not cg.callees("main")

    def test_unique_method_resolved(self):
        prog = build(
            "type x struct {\n\tp int\n}\nfunc (v *x) Solo(n int) {\n}\n"
            "func main(w interface{}) {\n\tw.Solo(1)\n}"
        )
        cg = build_call_graph(prog)
        assert "x.Solo" in cg.callees("main")

    def test_transitive_touchers(self):
        prog = build("func a() {\n\tb()\n}\nfunc b() {\n\tc()\n}\nfunc c() {\n}")
        cg = build_call_graph(prog)
        assert transitive_touchers(cg, {"c"}) == {"a", "b", "c"}


class TestAliasAnalysis:
    def test_assignment_flows(self):
        prog, cg, alias, pmap = analyze(
            "func f() {\n\tch := make(chan int)\n\td := ch\n\td <- 1\n}"
        )
        chans = [p for p in pmap if p.site.kind == "chan"]
        assert len(chans) == 1
        assert chans[0].ops_of_kind("send")

    def test_parameter_flows(self):
        prog, cg, alias, pmap = analyze(
            "func worker(c chan int) {\n\tc <- 1\n}\n"
            "func f() {\n\tch := make(chan int)\n\tworker(ch)\n}"
        )
        chan = [p for p in pmap if p.site.kind == "chan"][0]
        assert any(op.function == "worker" for op in chan.operations)

    def test_closure_free_var_flows(self):
        prog, cg, alias, pmap = analyze(
            "func f() {\n\tch := make(chan int)\n\tgo func() {\n\t\tch <- 1\n\t}()\n\t<-ch\n}"
        )
        chan = [p for p in pmap if p.site.kind == "chan"][0]
        kinds = {op.kind for op in chan.operations}
        assert kinds == {"create", "send", "recv"}

    def test_struct_field_flows(self):
        prog, cg, alias, pmap = analyze(
            "type s struct {\n\tc chan int\n}\n"
            "func f() {\n\tch := make(chan int)\n\tv := s{c: ch}\n\tv.c <- 1\n\t<-ch\n}"
        )
        chan = [p for p in pmap if p.site.kind == "chan"][0]
        assert chan.ops_of_kind("send") and chan.ops_of_kind("recv")

    def test_channel_through_channel_not_tracked(self):
        prog, cg, alias, pmap = analyze(
            "func f() {\n\tinner := make(chan int)\n\tcarrier := make(chan chan int, 1)\n"
            "\tcarrier <- inner\n\tc := <-carrier\n\tc <- 1\n}"
        )
        inner = [p for p in pmap if "inner" in p.site.label][0]
        # deliberate imprecision: the send through the received alias is lost
        assert not inner.ops_of_kind("send")

    def test_slice_store_not_tracked(self):
        prog, cg, alias, pmap = analyze(
            "func f() {\n\tch := make(chan int)\n\ts := make([]chan int, 1)\n"
            "\ts[0] = ch\n\tc := s[0]\n\tc <- 1\n}"
        )
        ch = [p for p in pmap if p.site.label.startswith("ch")][0]
        assert not ch.ops_of_kind("send")

    def test_return_value_flows(self):
        prog, cg, alias, pmap = analyze(
            "func mk() chan int {\n\tch := make(chan int)\n\treturn ch\n}\n"
            "func f() {\n\tc := mk()\n\tc <- 1\n}"
        )
        chan = [p for p in pmap if p.site.kind == "chan"][0]
        assert chan.ops_of_kind("send")


class TestPrimitives:
    def test_channel_creation_site(self):
        prog, cg, alias, pmap = analyze("func f() {\n\tch := make(chan int)\n\tch <- 1\n}")
        chan = [p for p in pmap if p.site.kind == "chan"][0]
        assert chan.site.function == "f"
        assert chan.buffer_size() == 0

    def test_buffer_size_constant(self):
        prog, cg, alias, pmap = analyze("func f() {\n\tch := make(chan int, 7)\n\tch <- 1\n}")
        chan = [p for p in pmap if p.site.kind == "chan"][0]
        assert chan.buffer_size() == 7

    def test_buffer_size_unknown(self):
        prog, cg, alias, pmap = analyze(
            "func f(n int) {\n\tch := make(chan int, n)\n\tch <- 1\n}"
        )
        chan = [p for p in pmap if p.site.kind == "chan"][0]
        assert chan.buffer_size() is None

    def test_select_cases_indexed(self):
        prog, cg, alias, pmap = analyze(
            "func f(a chan int) {\n\tch := make(chan int)\n"
            "\tselect {\n\tcase <-ch:\n\tcase a <- 1:\n\t}\n}"
        )
        ch = [p for p in pmap if p.site.label.startswith("ch")][0]
        recvs = ch.ops_of_kind("recv")
        assert recvs and recvs[0].select_case is not None

    def test_mutex_ops_indexed(self):
        prog, cg, alias, pmap = analyze(
            "func f() {\n\tvar mu sync.Mutex\n\tmu.Lock()\n\tmu.Unlock()\n}"
        )
        mutex = [p for p in pmap if p.is_mutex][0]
        assert {op.kind for op in mutex.operations} == {"create", "lock", "unlock"}

    def test_deferred_close_indexed(self):
        prog, cg, alias, pmap = analyze(
            "func f() {\n\tch := make(chan int)\n\tdefer close(ch)\n\tch <- 1\n}"
        )
        chan = [p for p in pmap if p.site.kind == "chan"][0]
        assert chan.ops_of_kind("close")


class TestScopeAndDependency:
    FIG1 = (
        "func StdCopy() int {\n\treturn 0\n}\n"
        "func Exec(ctx context.Context) int {\n"
        "\toutDone := make(chan int)\n"
        "\tgo func() {\n\t\terr := StdCopy()\n\t\toutDone <- err\n\t}()\n"
        "\tselect {\n\tcase err := <-outDone:\n\t\tif err != 0 {\n\t\t\treturn err\n\t\t}\n"
        "\tcase <-ctx.Done():\n\t\treturn 1\n\t}\n\treturn 0\n}\n"
        "func main() {\n\tctx := context.Background()\n\tExec(ctx)\n}"
    )

    def _full(self, source):
        prog = build(source)
        cg = build_call_graph(prog)
        alias = run_alias_analysis(prog, cg)
        pmap = find_primitives(prog, cg, alias)
        scopes = compute_all_scopes(pmap, cg)
        deps = build_dependency_graph(prog, cg, pmap)
        return prog, cg, pmap, scopes, deps

    def test_lca_is_creating_function(self):
        prog, cg, pmap, scopes, deps = self._full(self.FIG1)
        chan = [p for p in pmap if p.site.kind == "chan"][0]
        assert scopes[chan].lca == "Exec"

    def test_ctxdone_scope_is_whole_program(self):
        prog, cg, pmap, scopes, deps = self._full(self.FIG1)
        done = [p for p in pmap if p.site.kind == "ctxdone"][0]
        assert scopes[done].size == len(prog.functions)

    def test_select_channels_mutually_dependent(self):
        prog, cg, pmap, scopes, deps = self._full(self.FIG1)
        chan = [p for p in pmap if p.site.kind == "chan"][0]
        done = [p for p in pmap if p.site.kind == "ctxdone"][0]
        assert deps.circular(chan, done)

    def test_pset_excludes_larger_scope(self):
        # the paper's running example: Pset(outDone) must not contain
        # ctx.Done(), which has the larger scope
        prog, cg, pmap, scopes, deps = self._full(self.FIG1)
        chan = [p for p in pmap if p.site.kind == "chan"][0]
        pset = compute_pset(chan, deps, scopes)
        assert pset == [chan]

    def test_pset_includes_smaller_circular_mutex(self):
        source = (
            "func f() {\n\tvar mu sync.Mutex\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tmu.Lock()\n\t\tch <- 1\n\t\tmu.Unlock()\n\t}()\n"
            "\tmu.Lock()\n\t<-ch\n\tmu.Unlock()\n}"
        )
        prog, cg, pmap, scopes, deps = self._full(source)
        chan = [p for p in pmap if p.site.kind == "chan"][0]
        mutex = [p for p in pmap if p.is_mutex][0]
        pset = compute_pset(chan, deps, scopes)
        pset_other = compute_pset_other = None
        assert (mutex in pset) or (
            chan in compute_pset(mutex, deps, scopes)
        ), "one of the two analyses must see both primitives"

    def test_unrelated_channels_not_in_pset(self):
        source = (
            "func f() {\n\ta := make(chan int)\n\tgo func() {\n\t\ta <- 1\n\t}()\n\t<-a\n}\n"
            "func g() {\n\tb := make(chan int)\n\tgo func() {\n\t\tb <- 1\n\t}()\n\t<-b\n}"
        )
        prog, cg, pmap, scopes, deps = self._full(source)
        a = [p for p in pmap if p.site.label.startswith("a")][0]
        pset = compute_pset(a, deps, scopes)
        assert all("b" != p.site.label for p in pset)
