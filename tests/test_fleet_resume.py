"""Fleet resume + parity acceptance suite.

The ISSUE-10 acceptance bar, asserted end to end:

* a 49-program corpus sweep across 3 daemons produces **byte-identical**
  canonical report bytes to the serial one-shot sweep;
* a sweep killed mid-flight (deterministic ``fleet-supervisor``
  checkpoint fault) resumes from its manifest: completed units are
  skipped, the rest re-run, and the final report is still byte-identical;
* an edited unit (changed fingerprint) re-runs on resume even though its
  uid completed before.

Daemons run in thread mode here — same wire protocol, admission and
scheduler as process mode, without interpreter-spawn latency; the CI
``fleet-smoke`` job covers the process backend.
"""

import os

import pytest

from repro.fleet import (
    SweepKilled,
    SweepManifest,
    SweepPlan,
    canonical_bytes,
    materialize_bugset,
    plan_corpus,
    run_sweep,
    serial_sweep,
)
from repro.resilience.faultinject import injected


@pytest.fixture(scope="module")
def bugset_root(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("bugset"))
    materialize_bugset(root)
    return root


@pytest.fixture(scope="module")
def serial_bytes(bugset_root):
    """The serial one-shot reference over the full 49-program corpus."""
    result = serial_sweep(plan_corpus(bugset_root))
    assert result.complete() and not result.failed
    return canonical_bytes(result.report())


def subset(plan, n):
    return SweepPlan(kind=plan.kind, root=plan.root, units=plan.units[:n])


class TestFortyNineProgramParity:
    def test_three_daemon_sweep_is_byte_identical_to_serial(
        self, bugset_root, serial_bytes, tmp_path
    ):
        plan = plan_corpus(bugset_root)
        assert len(plan.units) == 49
        fleet = run_sweep(
            plan, daemons=3, mode="thread",
            manifest_path=str(tmp_path / "m.jsonl"),
        )
        assert fleet.complete() and not fleet.failed
        assert canonical_bytes(fleet.report()) == serial_bytes
        # the sweep actually spread across the fleet
        assert len(fleet.telemetry()["by_daemon"]) == 3

    def test_killed_then_resumed_sweep_is_byte_identical(
        self, bugset_root, serial_bytes, tmp_path
    ):
        plan = plan_corpus(bugset_root)
        manifest_path = str(tmp_path / "m.jsonl")
        # deterministic mid-sweep kill: the supervisor checkpoint right
        # after Set10's manifest record lands
        with injected("fleet-supervisor@Set10:raise"):
            with pytest.raises(SweepKilled):
                run_sweep(
                    plan, daemons=3, mode="thread", manifest_path=manifest_path
                )
        completed = SweepManifest(manifest_path).completed_uids()
        assert "Set10" in completed  # record written before the kill point
        assert 0 < len(completed) < 49

        resumed = run_sweep(
            plan, daemons=3, mode="thread", manifest_path=manifest_path
        )
        assert resumed.complete() and not resumed.failed
        skipped = sorted(
            uid for uid, meta in resumed.metas.items() if meta.get("skipped")
        )
        assert skipped == sorted(completed)
        assert canonical_bytes(resumed.report()) == serial_bytes


class TestResumeSemantics:
    def test_completed_units_skip_and_changed_fingerprints_rerun(
        self, bugset_root, tmp_path
    ):
        plan = subset(plan_corpus(bugset_root), 6)
        manifest_path = str(tmp_path / "m.jsonl")
        first = run_sweep(
            plan, daemons=2, mode="thread", manifest_path=manifest_path
        )
        assert first.complete()

        # edit one unit in place; only it re-runs on the next sweep
        edited = plan.units[2]
        with open(os.path.join(edited.path, "main.go"), "a") as handle:
            handle.write("// edited after first sweep\n")
        replanned = subset(plan_corpus(bugset_root), 6)
        assert replanned.units[2].fingerprint != edited.fingerprint
        second = run_sweep(
            replanned, daemons=2, mode="thread", manifest_path=manifest_path
        )
        assert second.complete()
        rerun = [u for u, m in second.metas.items() if not m.get("skipped")]
        assert rerun == [edited.uid]
        # the re-run superseded the stale record: a third sweep skips all
        third = run_sweep(
            replanned, daemons=2, mode="thread", manifest_path=manifest_path
        )
        assert all(m.get("skipped") for m in third.metas.values())

    def test_resume_after_kill_skips_exactly_the_manifest(
        self, bugset_root, tmp_path
    ):
        plan = subset(plan_corpus(bugset_root), 8)
        manifest_path = str(tmp_path / "m.jsonl")
        with injected("fleet-supervisor@Miss03:raise"):
            with pytest.raises(SweepKilled):
                run_sweep(
                    plan, daemons=2, mode="thread", manifest_path=manifest_path
                )
        completed = set(SweepManifest(manifest_path).completed_uids())
        resumed = run_sweep(
            plan, daemons=2, mode="thread", manifest_path=manifest_path
        )
        assert resumed.complete()
        for unit in plan.units:
            meta = resumed.metas[unit.uid]
            if unit.uid in completed:
                assert meta.get("skipped"), unit.uid
            else:
                assert not meta.get("skipped"), unit.uid

    def test_serial_and_resumed_reports_agree_on_subset(
        self, bugset_root, tmp_path
    ):
        plan = subset(plan_corpus(bugset_root), 8)
        manifest_path = str(tmp_path / "m.jsonl")
        with injected("fleet-supervisor@Miss05:raise"):
            with pytest.raises(SweepKilled):
                run_sweep(
                    plan, daemons=2, mode="thread", manifest_path=manifest_path
                )
        resumed = run_sweep(
            plan, daemons=2, mode="thread", manifest_path=manifest_path
        )
        serial = serial_sweep(plan)
        assert canonical_bytes(resumed.report()) == canonical_bytes(serial.report())
