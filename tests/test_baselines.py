"""Tests for the §7 baseline detectors (vet/staticcheck and Go's runtime)."""

from repro.detector.baselines import (
    check_deferred_double_lock,
    run_dynamic_deadlock_detector,
    run_static_suites,
)
from tests.conftest import build


class TestStaticSuites:
    def test_defer_lock_typo_detected(self):
        program = build(
            "func f() {\n\tvar mu sync.Mutex\n\tmu.Lock()\n\tdefer mu.Lock()\n}"
        )
        reports = check_deferred_double_lock(program)
        assert len(reports) == 1
        assert reports[0].category == "defer-lock-typo"

    def test_correct_defer_unlock_clean(self):
        program = build(
            "func f() {\n\tvar mu sync.Mutex\n\tmu.Lock()\n\tdefer mu.Unlock()\n}"
        )
        assert check_deferred_double_lock(program) == []

    def test_fatal_in_goroutine_detected(self):
        program = build(
            'func TestX(t *testing.T) {\n\tgo func() {\n\t\tt.Fatal("x")\n\t}()\n}'
        )
        result = run_static_suites(program)
        assert len(result.fatal_reports) == 1

    def test_suites_find_zero_bmoc_bugs(self, figure1_source):
        # the paper's headline comparison: vet/staticcheck detect 0/149
        # BMOC bugs; our Figure 1 instance is invisible to them
        program = build(figure1_source)
        result = run_static_suites(program)
        assert result.reports == []


class TestDynamicDetector:
    def test_global_deadlock_caught(self):
        program = build("func main() {\n\tch := make(chan int)\n\tch <- 1\n}")
        result = run_dynamic_deadlock_detector(program, seeds=5)
        assert result.global_deadlocks == 5
        assert result.detected_anything

    def test_partial_deadlock_missed(self):
        # a leaked child with a live main goroutine: the BMOC symptom that
        # Go's built-in detector cannot see
        program = build(
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}"
        )
        result = run_dynamic_deadlock_detector(program, seeds=5)
        assert result.global_deadlocks == 0
        assert result.partial_deadlocks_missed == 5
        assert not result.detected_anything

    def test_clean_program(self):
        program = build(
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(<-ch)\n}"
        )
        result = run_dynamic_deadlock_detector(program, seeds=5)
        assert result.global_deadlocks == 0
        assert result.partial_deadlocks_missed == 0
