"""Tests for the five traditional checkers (§3.5)."""

from repro.analysis.alias import run_alias_analysis
from repro.analysis.callgraph import build_call_graph
from repro.detector.traditional.double_lock import check_double_lock
from repro.detector.traditional.fatal_goroutine import check_fatal_goroutine
from repro.detector.traditional.forget_unlock import check_forget_unlock
from repro.detector.traditional.lock_order import check_lock_order
from repro.detector.traditional.struct_race import check_struct_races
from tests.conftest import build


def prepared(source: str):
    prog = build(source)
    cg = build_call_graph(prog)
    alias = run_alias_analysis(prog, cg)
    return prog, cg, alias


class TestForgetUnlock:
    def test_early_return_holding(self):
        prog, cg, alias = prepared(
            "func f(d bool) {\n\tvar mu sync.Mutex\n\tmu.Lock()\n"
            "\tif d {\n\t\treturn\n\t}\n\tmu.Unlock()\n}"
        )
        reports = check_forget_unlock(prog, alias)
        assert len(reports) == 1
        assert reports[0].category == "forget-unlock"

    def test_balanced_clean(self):
        prog, cg, alias = prepared(
            "func f() {\n\tvar mu sync.Mutex\n\tmu.Lock()\n\tmu.Unlock()\n}"
        )
        assert check_forget_unlock(prog, alias) == []

    def test_defer_unlock_clean(self):
        prog, cg, alias = prepared(
            "func f(d bool) {\n\tvar mu sync.Mutex\n\tmu.Lock()\n"
            "\tdefer mu.Unlock()\n\tif d {\n\t\treturn\n\t}\n}"
        )
        assert check_forget_unlock(prog, alias) == []

    def test_wrapper_lock_is_false_positive(self):
        # semantic FP: begin() locks, end() unlocks — intra-procedural
        # analysis cannot see the pairing (paper: 18 semantic FPs)
        prog, cg, alias = prepared(
            "type s struct {\n\tmu sync.Mutex\n}\n"
            "func (x *s) begin() {\n\tx.mu.Lock()\n}\n"
            "func (x *s) end() {\n\tx.mu.Unlock()\n}\n"
            "func f() {\n\tv := s{}\n\tv.begin()\n\tv.end()\n}"
        )
        assert len(check_forget_unlock(prog, alias)) == 1


class TestDoubleLock:
    def test_intraprocedural(self):
        prog, cg, alias = prepared(
            "func f() {\n\tvar mu sync.Mutex\n\tmu.Lock()\n\tmu.Lock()\n}"
        )
        assert len(check_double_lock(prog, alias)) == 1

    def test_interprocedural_via_summary(self):
        prog, cg, alias = prepared(
            "type r struct {\n\tmu sync.Mutex\n\tn int\n}\n"
            "func (x *r) inner() {\n\tx.mu.Lock()\n\tx.mu.Unlock()\n}\n"
            "func (x *r) outer() {\n\tx.mu.Lock()\n\tx.inner()\n\tx.mu.Unlock()\n}\n"
            "func f() {\n\tv := r{}\n\tv.outer()\n}"
        )
        reports = check_double_lock(prog, alias)
        assert len(reports) == 1
        assert "inner" in reports[0].description

    def test_lock_unlock_lock_clean(self):
        prog, cg, alias = prepared(
            "func f() {\n\tvar mu sync.Mutex\n\tmu.Lock()\n\tmu.Unlock()\n\tmu.Lock()\n\tmu.Unlock()\n}"
        )
        assert check_double_lock(prog, alias) == []

    def test_two_different_mutexes_clean(self):
        prog, cg, alias = prepared(
            "func f() {\n\tvar a sync.Mutex\n\tvar b sync.Mutex\n"
            "\ta.Lock()\n\tb.Lock()\n\tb.Unlock()\n\ta.Unlock()\n}"
        )
        assert check_double_lock(prog, alias) == []


class TestLockOrder:
    def test_conflicting_orders(self):
        prog, cg, alias = prepared(
            "type s struct {\n\ta sync.Mutex\n\tb sync.Mutex\n}\n"
            "func (x *s) ab() {\n\tx.a.Lock()\n\tx.b.Lock()\n\tx.b.Unlock()\n\tx.a.Unlock()\n}\n"
            "func (x *s) ba() {\n\tx.b.Lock()\n\tx.a.Lock()\n\tx.a.Unlock()\n\tx.b.Unlock()\n}\n"
            "func f() {\n\tv := s{}\n\tv.ab()\n\tv.ba()\n}"
        )
        assert len(check_lock_order(prog, alias)) == 1

    def test_consistent_order_clean(self):
        prog, cg, alias = prepared(
            "type s struct {\n\ta sync.Mutex\n\tb sync.Mutex\n}\n"
            "func (x *s) one() {\n\tx.a.Lock()\n\tx.b.Lock()\n\tx.b.Unlock()\n\tx.a.Unlock()\n}\n"
            "func (x *s) two() {\n\tx.a.Lock()\n\tx.b.Lock()\n\tx.b.Unlock()\n\tx.a.Unlock()\n}\n"
            "func f() {\n\tv := s{}\n\tv.one()\n\tv.two()\n}"
        )
        assert check_lock_order(prog, alias) == []

    def test_order_through_call(self):
        prog, cg, alias = prepared(
            "type s struct {\n\ta sync.Mutex\n\tb sync.Mutex\n}\n"
            "func (x *s) lockB() {\n\tx.b.Lock()\n\tx.b.Unlock()\n}\n"
            "func (x *s) ab() {\n\tx.a.Lock()\n\tx.lockB()\n\tx.a.Unlock()\n}\n"
            "func (x *s) ba() {\n\tx.b.Lock()\n\tx.a.Lock()\n\tx.a.Unlock()\n\tx.b.Unlock()\n}\n"
            "func f() {\n\tv := s{}\n\tv.ab()\n\tv.ba()\n}"
        )
        assert len(check_lock_order(prog, alias)) == 1


class TestStructRace:
    PROTECTED = (
        "type c struct {\n\tmu sync.Mutex\n\tval int\n}\n"
        "func (x *c) a() {\n\tx.mu.Lock()\n\tx.val = 1\n\tx.mu.Unlock()\n}\n"
        "func (x *c) b() int {\n\tx.mu.Lock()\n\tv := x.val\n\tx.mu.Unlock()\n\treturn v\n}\n"
        "func (x *c) cc() {\n\tx.mu.Lock()\n\tx.val = 2\n\tx.mu.Unlock()\n}\n"
    )

    def test_unprotected_write_reported(self):
        prog, cg, alias = prepared(
            self.PROTECTED
            + "func (x *c) racy() {\n\tx.val = 9\n}\n"
            + "func f() {\n\tv := c{}\n\tv.a()\n\tv.b()\n\tv.cc()\n\tv.racy()\n}"
        )
        reports = check_struct_races(prog, alias)
        assert len(reports) == 1
        assert "racy" in reports[0].description

    def test_all_protected_clean(self):
        prog, cg, alias = prepared(
            self.PROTECTED + "func f() {\n\tv := c{}\n\tv.a()\n\tv.b()\n\tv.cc()\n}"
        )
        assert check_struct_races(prog, alias) == []

    def test_never_protected_field_not_reported(self):
        prog, cg, alias = prepared(
            "type c struct {\n\tval int\n}\n"
            "func (x *c) a() {\n\tx.val = 1\n}\n"
            "func (x *c) b() int {\n\treturn x.val\n}\n"
            "func (x *c) d() {\n\tx.val = 2\n}\n"
            "func f() {\n\tv := c{}\n\tv.a()\n\tv.b()\n\tv.d()\n}"
        )
        assert check_struct_races(prog, alias) == []

    def test_unprotected_reads_only_not_reported(self):
        prog, cg, alias = prepared(
            self.PROTECTED
            + "func (x *c) peek() int {\n\treturn x.val\n}\n"
            + "func f() {\n\tv := c{}\n\tv.a()\n\tv.b()\n\tv.cc()\n\tv.peek()\n}"
        )
        assert check_struct_races(prog, alias) == []


class TestFatalGoroutine:
    def test_fatal_in_spawned_closure(self):
        prog, cg, alias = prepared(
            'func TestX(t *testing.T) {\n\tgo func() {\n\t\tt.Fatal("x")\n\t}()\n}'
        )
        reports = check_fatal_goroutine(prog, cg)
        assert len(reports) == 1

    def test_fatal_in_main_test_goroutine_clean(self):
        prog, cg, alias = prepared('func TestX(t *testing.T) {\n\tt.Fatal("x")\n}')
        assert check_fatal_goroutine(prog, cg) == []

    def test_fatal_reached_through_call_chain(self):
        prog, cg, alias = prepared(
            "func helper(t *testing.T) {\n\tt.FailNow()\n}\n"
            "func TestX(t *testing.T) {\n\tgo func() {\n\t\thelper(t)\n\t}()\n}"
        )
        assert len(check_fatal_goroutine(prog, cg)) == 1

    def test_errorf_not_reported(self):
        prog, cg, alias = prepared(
            'func TestX(t *testing.T) {\n\tgo func() {\n\t\tt.Errorf("x")\n\t}()\n}'
        )
        assert check_fatal_goroutine(prog, cg) == []
