"""Tests for the AST -> source printer, including round-trip properties."""

import pytest

from repro.corpus.apps import build_corpus
from repro.corpus.snippets import ALL_SNIPPETS
from repro.golang import ast_nodes as ast
from repro.golang.parser import parse_file
from repro.golang.printer import print_file
from repro.ssa.builder import build_program


def normal_form(source: str) -> str:
    """Print a parse; reprinting its own parse must be a fixpoint."""
    return print_file(parse_file(source))


def assert_round_trips(source: str) -> None:
    once = normal_form(source)
    twice = normal_form(once)
    assert once == twice


class TestBasicPrinting:
    def test_function(self):
        out = normal_form("package main\nfunc add(a int, b int) int {\n\treturn a + b\n}")
        assert "func add(a int, b int) int {" in out
        assert "\treturn a + b" in out

    def test_struct_with_qualified_types(self):
        out = normal_form(
            "package main\ntype s struct {\n\tmu sync.Mutex\n\twg sync.WaitGroup\n}"
        )
        assert "mu sync.Mutex" in out
        assert "wg sync.WaitGroup" in out

    def test_channel_operations(self):
        out = normal_form(
            "package main\nfunc f() {\n\tch := make(chan int, 2)\n\tch <- 1\n"
            "\tv := <-ch\n\tclose(ch)\n\tprintln(v)\n}"
        )
        assert "ch := make(chan int, 2)" in out
        assert "ch <- 1" in out
        assert "v := <-ch" in out

    def test_select_with_default(self):
        out = normal_form(
            "package main\nfunc f(a chan int) {\n\tselect {\n"
            "\tcase v := <-a:\n\t\tprintln(v)\n\tcase a <- 1:\n\tdefault:\n\t}\n}"
        )
        assert "case v := <-a:" in out
        assert "case a <- 1:" in out
        assert "default:" in out

    def test_go_func_literal(self):
        out = normal_form(
            "package main\nfunc f() {\n\tgo func() {\n\t\tprintln(1)\n\t}()\n}"
        )
        assert "go func() {" in out
        assert "}()" in out

    def test_if_else_chain(self):
        out = normal_form(
            "package main\nfunc f(x int) {\n\tif x > 0 {\n\t\tprintln(1)\n"
            "\t} else if x < 0 {\n\t\tprintln(2)\n\t} else {\n\t\tprintln(3)\n\t}\n}"
        )
        assert "} else if x < 0 {" in out
        assert "} else {" in out

    def test_three_clause_for(self):
        out = normal_form(
            "package main\nfunc f() {\n\tfor i := 0; i < 4; i++ {\n\t\tprintln(i)\n\t}\n}"
        )
        assert "for i := 0; i < 4; i++ {" in out

    def test_range_over_channel(self):
        out = normal_form(
            "package main\nfunc f(ch chan int) {\n\tfor v := range ch {\n\t\tprintln(v)\n\t}\n}"
        )
        assert "for v := range ch {" in out

    def test_unit_send(self):
        out = normal_form(
            "package main\nfunc f(ch chan struct{}) {\n\tch <- struct{}{}\n}"
        )
        assert "ch <- struct{}{}" in out

    def test_binary_parenthesization_preserves_meaning(self):
        out = normal_form("package main\nfunc f() int {\n\treturn (1 + 2) * 3\n}")
        reparsed = parse_file(out)
        # evaluate via the runtime to confirm semantics survived printing
        program = build_program(out + "\nfunc main() {\n\tprintln(f())\n}")
        from repro.runtime.scheduler import run_program

        assert run_program(program, seed=0).output == ["9"]


class TestRoundTrips:
    @pytest.mark.parametrize("sn", ALL_SNIPPETS, ids=lambda s: s.name)
    def test_figures_round_trip(self, sn):
        assert_round_trips(sn.source)

    def test_figures_still_detect_after_reprint(self):
        from repro.detector.bmoc import detect_bmoc

        for sn in ALL_SNIPPETS:
            reprinted = normal_form(sn.source)
            result = detect_bmoc(build_program(reprinted, sn.name + ".go"))
            assert len(result.bmoc_channel_bugs()) == 1, sn.name

    @pytest.mark.parametrize("app_name", ["bbolt", "Gin", "frp"])
    def test_corpus_apps_round_trip(self, app_name):
        app = next(a for a in build_corpus() if a.name == app_name)
        assert_round_trips(app.source)

    def test_docker_corpus_app_round_trips(self):
        app = next(a for a in build_corpus() if a.name == "Docker")
        assert_round_trips(app.source)
