"""Unit tests for AST -> IR lowering."""

import pytest

from repro.ssa import ir
from repro.ssa.builder import BuildError, build_program
from tests.conftest import build


def instrs_of(program, name):
    return list(program.functions[name].instructions())


def find(program, name, kind):
    return [i for i in instrs_of(program, name) if isinstance(i, kind)]


class TestChannelLowering:
    def test_make_chan_named(self):
        prog = build("func f() {\n\tch := make(chan int)\n\tch <- 1\n}")
        makes = find(prog, "f", ir.MakeChan)
        assert len(makes) == 1
        assert makes[0].dst.name.startswith("ch")

    def test_buffered_size_constant(self):
        prog = build("func f() {\n\tch := make(chan int, 3)\n\tch <- 1\n}")
        assert find(prog, "f", ir.MakeChan)[0].size == ir.Const(3)

    def test_send_recv_close(self):
        prog = build(
            "func f() {\n\tch := make(chan int)\n\tch <- 1\n\tv := <-ch\n\tclose(ch)\n\tprintln(v)\n}"
        )
        assert len(find(prog, "f", ir.Send)) == 1
        assert len(find(prog, "f", ir.Recv)) == 1
        assert len(find(prog, "f", ir.Close)) == 1

    def test_recv_with_ok(self):
        prog = build("func f(ch chan int) {\n\tv, ok := <-ch\n\tprintln(v, ok)\n}")
        recv = find(prog, "f", ir.Recv)[0]
        assert recv.dst is not None
        assert recv.ok_dst is not None

    def test_select_terminator(self):
        prog = build(
            "func f(a chan int, b chan int) {\n"
            "\tselect {\n\tcase <-a:\n\tcase b <- 1:\n\tdefault:\n\t}\n}"
        )
        selects = find(prog, "f", ir.Select)
        assert len(selects) == 1
        select = selects[0]
        assert len(select.cases) == 2
        assert select.default_target is not None
        assert select.cases[0].kind == "recv"
        assert select.cases[1].kind == "send"

    def test_range_over_channel(self):
        prog = build("func f(ch chan int) {\n\tfor v := range ch {\n\t\tprintln(v)\n\t}\n}")
        assert len(find(prog, "f", ir.RangeNext)) == 1

    def test_range_over_int_is_counted_loop(self):
        prog = build("func f(n int) {\n\tfor i := range n {\n\t\tprintln(i)\n\t}\n}")
        assert not find(prog, "f", ir.RangeNext)
        assert find(prog, "f", ir.CondJump)


class TestSyncLowering:
    def test_mutex_methods(self):
        prog = build(
            "func f() {\n\tvar mu sync.Mutex\n\tmu.Lock()\n\tmu.Unlock()\n}"
        )
        assert len(find(prog, "f", ir.MakeMutex)) == 1
        assert len(find(prog, "f", ir.Lock)) == 1
        assert len(find(prog, "f", ir.Unlock)) == 1

    def test_rwmutex_read_ops(self):
        prog = build(
            "func f() {\n\tvar mu sync.RWMutex\n\tmu.RLock()\n\tmu.RUnlock()\n}"
        )
        assert find(prog, "f", ir.Lock)[0].read
        assert find(prog, "f", ir.Unlock)[0].read

    def test_waitgroup_methods(self):
        prog = build(
            "func f() {\n\tvar wg sync.WaitGroup\n\twg.Add(2)\n\twg.Done()\n\twg.Wait()\n}"
        )
        assert find(prog, "f", ir.WgAdd)[0].delta == ir.Const(2)
        assert len(find(prog, "f", ir.WgDone)) == 1
        assert len(find(prog, "f", ir.WgWait)) == 1

    def test_testing_fatal(self):
        prog = build('func TestX(t *testing.T) {\n\tt.Fatalf("boom")\n}')
        fatals = find(prog, "TestX", ir.Fatal)
        assert len(fatals) == 1
        assert fatals[0].method == "Fatalf"

    def test_context_done(self):
        prog = build("func f(ctx context.Context) {\n\t<-ctx.Done()\n}")
        assert len(find(prog, "f", ir.CtxDone)) == 1

    def test_context_with_cancel(self):
        prog = build("func f() {\n\tctx, cancel := context.WithCancel()\n\tcancel()\n\t<-ctx.Done()\n}")
        makes = find(prog, "f", ir.MakeContext)
        assert len(makes) == 1
        assert makes[0].cancel_dst is not None

    def test_time_sleep(self):
        prog = build("func f() {\n\ttime.Sleep(5)\n}")
        assert len(find(prog, "f", ir.Sleep)) == 1


class TestClosures:
    def test_func_literal_becomes_function(self):
        prog = build("func f() {\n\tgo func() {\n\t\tprintln(1)\n\t}()\n}")
        assert "f$lit1" in prog.functions
        assert prog.functions["f$lit1"].is_closure

    def test_free_variables_recorded(self):
        prog = build(
            "func f() {\n\tch := make(chan int)\n\tgo func() {\n\t\tch <- 1\n\t}()\n\t<-ch\n}"
        )
        lit = prog.functions["f$lit1"]
        assert any(name.startswith("ch") for name in lit.free_vars)

    def test_locals_not_free(self):
        prog = build("func f() {\n\tgo func() {\n\t\tx := 1\n\t\tprintln(x)\n\t}()\n}")
        assert prog.functions["f$lit1"].free_vars == []

    def test_nested_closures(self):
        prog = build(
            "func f() {\n\tx := 1\n\tgo func() {\n\t\tgo func() {\n\t\t\tprintln(x)\n\t\t}()\n\t}()\n}"
        )
        inner = prog.functions["f$lit1$lit1"]
        assert any(name.startswith("x") for name in inner.free_vars)


class TestScoping:
    def test_shadowing_gets_unique_names(self):
        prog = build(
            "func f() {\n\tx := 1\n\tif x > 0 {\n\t\tx := 2\n\t\tprintln(x)\n\t}\n\tprintln(x)\n}"
        )
        assigns = find(prog, "f", ir.Assign)
        names = {a.dst.name for a in assigns}
        assert len([n for n in names if n.startswith("x")]) == 2

    def test_blank_identifier_discarded(self):
        prog = build("func f(ch chan int) {\n\t_ = <-ch\n}")
        recv = find(prog, "f", ir.Recv)[0]
        # value lands in a temp, not a named register
        assert recv.dst is None or recv.dst.name.startswith("t")

    def test_struct_mutex_field_materialized(self):
        prog = build(
            "type s struct {\n\tmu sync.Mutex\n}\n"
            "func f() {\n\tv := s{}\n\tv.mu.Lock()\n}"
        )
        assert find(prog, "f", ir.MakeMutex)

    def test_undefined_name_errors(self):
        with pytest.raises(BuildError):
            build("func f() {\n\tprintln(mystery)\n}")


class TestDefer:
    def test_defer_close_pseudo(self):
        prog = build("func f(ch chan int) {\n\tdefer close(ch)\n}")
        defers = find(prog, "f", ir.Defer)
        assert defers[0].func_op == ir.FuncRef("$close")

    def test_defer_unlock_pseudo(self):
        prog = build("func f() {\n\tvar mu sync.Mutex\n\tmu.Lock()\n\tdefer mu.Unlock()\n}")
        defers = find(prog, "f", ir.Defer)
        assert defers[0].func_op == ir.FuncRef("$unlock")

    def test_defer_closure(self):
        prog = build("func f(ch chan int) {\n\tdefer func() {\n\t\tch <- 1\n\t}()\n}")
        defers = find(prog, "f", ir.Defer)
        assert defers[0].func_op == ir.FuncRef("f$lit1")


class TestBranchInfo:
    def test_simple_comparison_extracted(self):
        prog = build("func f(x int) {\n\tif x > 3 {\n\t\tprintln(x)\n\t}\n}")
        jumps = find(prog, "f", ir.CondJump)
        info = jumps[0].branch_info
        assert info is not None
        assert info.op == ">"
        assert info.const == 3

    def test_reversed_comparison_normalized(self):
        prog = build("func f(x int) {\n\tif 3 < x {\n\t\tprintln(x)\n\t}\n}")
        info = find(prog, "f", ir.CondJump)[0].branch_info
        assert info.op == ">"
        assert info.const == 3

    def test_bool_var_condition(self):
        prog = build("func f(ok bool) {\n\tif ok {\n\t\tprintln(1)\n\t}\n}")
        info = find(prog, "f", ir.CondJump)[0].branch_info
        assert info.const is True

    def test_negated_bool_condition(self):
        prog = build("func f(ok bool) {\n\tif !ok {\n\t\tprintln(1)\n\t}\n}")
        info = find(prog, "f", ir.CondJump)[0].branch_info
        assert info.const is False

    def test_complex_condition_has_no_info(self):
        prog = build("func f(x int, y int) {\n\tif x > y {\n\t\tprintln(1)\n\t}\n}")
        assert find(prog, "f", ir.CondJump)[0].branch_info is None


class TestErrors:
    def test_arity_mismatch(self):
        with pytest.raises(BuildError):
            build("func f() {\n\ta, b := 1, 2, 3\n}")

    def test_break_outside_loop(self):
        with pytest.raises(BuildError):
            build("func f() {\n\tbreak\n}")

    def test_continue_outside_loop(self):
        with pytest.raises(BuildError):
            build("func f() {\n\tcontinue\n}")


class TestProgramStructure:
    def test_kinds_map_populated(self):
        prog = build("func f() {\n\tch := make(chan int)\n\tch <- 1\n}")
        chan_kinds = [k for k in prog.kinds.values() if k == "chan"]
        assert chan_kinds

    def test_every_block_terminated(self):
        prog = build(
            "func f(x int) int {\n\tif x > 0 {\n\t\treturn 1\n\t}\n\treturn 0\n}"
        )
        for func in prog:
            for block in func.reachable_blocks():
                assert block.terminator is not None

    def test_implicit_return_added(self):
        prog = build("func f() {\n\tprintln(1)\n}")
        terminators = [b.terminator for b in prog.functions["f"].reachable_blocks()]
        assert any(isinstance(t, ir.Return) for t in terminators)
