"""Property-based tests over core invariants (hypothesis)."""

import random

from hypothesis import given, settings, strategies as st

from repro.detector.bmoc import detect_bmoc
from repro.detector.paths import BranchEvent, conditions_satisfiable
from repro.fixer.patch import LineEdit, Patch
from repro.runtime.scheduler import explore_schedules, run_program
from repro.ssa import cfg
from repro.ssa.builder import build_program
from repro.ssa.dominators import dominator_tree, post_dominator_tree
from tests.conftest import build

# ---------------------------------------------------------------------------
# detector vs. runtime oracle

_op_list = st.lists(st.sampled_from(["send", "recv"]), min_size=0, max_size=3)


def _random_program(buf: int, parent_ops, child_ops) -> str:
    body_child = "\n".join(
        "\t\tch <- 1" if op == "send" else "\t\t<-ch" for op in child_ops
    )
    body_parent = "\n".join("\tch <- 2" if op == "send" else "\t<-ch" for op in parent_ops)
    size = f", {buf}" if buf else ""
    return (
        "package main\n\nfunc main() {\n"
        f"\tch := make(chan int{size})\n"
        "\tgo func() {\n" + (body_child + "\n" if body_child else "") + "\t}()\n"
        + (body_parent + "\n" if body_parent else "")
        + "}\n"
    )


class TestDetectorSoundness:
    @settings(max_examples=60, deadline=None)
    @given(buf=st.integers(min_value=0, max_value=2), parent=_op_list, child=_op_list)
    def test_report_iff_some_schedule_blocks(self, buf, parent, child):
        """On straight-line two-goroutine channel programs (no loops, no
        branches, no aliasing), the BMOC detector agrees exactly with the
        dynamic oracle: it reports a bug iff some schedule blocks forever."""
        source = _random_program(buf, parent, child)
        program = build_program(source, "prop.go")
        reports = detect_bmoc(program).reports
        runs = explore_schedules(program, seeds=40, max_steps=4000)
        dynamic = any(r.blocked_forever for r in runs)
        assert bool(reports) == dynamic, source


# ---------------------------------------------------------------------------
# branch-condition satisfiability vs. brute force


class TestConditionSatisfiability:
    @settings(max_examples=120, deadline=None)
    @given(
        conds=st.lists(
            st.tuples(
                st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
                st.integers(min_value=-3, max_value=3),
                st.booleans(),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_matches_brute_force_over_small_domain(self, conds):
        events = [
            BranchEvent(var="x", op=op, const=const, taken=taken, read_only=True, line=0)
            for op, const, taken in conds
        ]

        def holds(value, op, const, taken):
            result = {
                "==": value == const,
                "!=": value != const,
                "<": value < const,
                "<=": value <= const,
                ">": value > const,
                ">=": value >= const,
            }[op]
            return result == taken

        brute = any(
            all(holds(v, op, const, taken) for op, const, taken in conds)
            for v in range(-10, 11)
        )
        got = conditions_satisfiable(events)
        # the checker may only ever be *less* strict than the truth — it
        # never rejects a satisfiable conjunction
        if brute:
            assert got
        else:
            # integer-interval reasoning is exact on this fragment
            assert not got


# ---------------------------------------------------------------------------
# scheduler determinism / liveness


class TestSchedulerProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31), n=st.integers(min_value=1, max_value=4))
    def test_fan_in_always_completes_and_is_deterministic(self, seed, n):
        source = (
            "func main() {\n"
            f"\tch := make(chan int, {n})\n"
            f"\tfor i := 0; i < {n}; i++ {{\n"
            "\t\tgo func() {\n\t\t\tch <- i\n\t\t}()\n\t}\n"
            f"\ttotal := 0\n\tfor j := 0; j < {n}; j++ {{\n"
            "\t\ttotal = total + 1\n\t\t<-ch\n\t}\n\tprintln(total)\n}"
        )
        program = build(source)
        first = run_program(program, seed=seed, max_steps=20000)
        second = run_program(program, seed=seed, max_steps=20000)
        assert not first.blocked_forever
        assert first.output == [str(n)]
        assert first.output == second.output
        assert first.steps == second.steps

    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(st.integers(min_value=-99, max_value=99), min_size=1, max_size=5))
    def test_buffered_channel_is_fifo(self, values):
        sends = "\n".join(f"\tch <- {v}" for v in values)
        recvs = "\n".join("\tprintln(<-ch)" for _ in values)
        source = (
            "func main() {\n"
            f"\tch := make(chan int, {len(values)})\n" + sends + "\n" + recvs + "\n}"
        )
        result = run_program(build(source), seed=3)
        assert result.output == [str(v) for v in values]


# ---------------------------------------------------------------------------
# patches


class TestPatchProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        lines=st.lists(st.text(alphabet="abcxyz ", max_size=8), min_size=2, max_size=8),
        target=st.integers(min_value=1, max_value=2),
        replacement=st.lists(st.text(alphabet="ABC", max_size=5), max_size=3),
    )
    def test_apply_is_deterministic_and_counts_nonnegative(self, lines, target, replacement):
        original = "\n".join(lines)
        patch = Patch(
            "buffer", "prop", original, edits=[LineEdit(line=target, new_lines=replacement)]
        )
        assert patch.apply() == patch.apply()
        assert patch.changed_lines() >= 0

    def test_noop_edit_changes_nothing(self):
        patch = Patch("buffer", "noop", "a\nb", edits=[LineEdit(line=1, new_lines=["a"])])
        assert patch.changed_lines() == 0


# ---------------------------------------------------------------------------
# dominators on randomly branching programs


def _branching_program(depth_choices) -> str:
    body = []
    for i, branch in enumerate(depth_choices):
        if branch:
            body.append(f"\tif x > {i} {{\n\t\tprintln({i})\n\t}}")
        else:
            body.append(f"\tprintln({i})")
    return "func f(x int) {\n" + "\n".join(body) + "\n}"


class TestDominatorProperties:
    @settings(max_examples=40, deadline=None)
    @given(shape=st.lists(st.booleans(), min_size=1, max_size=5))
    def test_dominator_axioms(self, shape):
        program = build(_branching_program(shape))
        func = program.functions["f"]
        tree = dominator_tree(func)
        blocks = func.reachable_blocks()
        for block in blocks:
            assert tree.dominates(func.entry, block)
            assert tree.dominates(block, block)

    @settings(max_examples=40, deadline=None)
    @given(shape=st.lists(st.booleans(), min_size=1, max_size=5))
    def test_exit_post_dominates_everything(self, shape):
        program = build(_branching_program(shape))
        func = program.functions["f"]
        tree = post_dominator_tree(func)
        exits = cfg.exit_blocks(func)
        assert len(exits) == 1
        for block in func.reachable_blocks():
            assert tree.post_dominates(exits[0], block)
