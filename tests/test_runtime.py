"""Tests for the runtime: channel semantics, scheduling, deadlock oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.scheduler import explore_schedules, run_program
from repro.runtime.values import Channel, GoPanic
from tests.conftest import build


def run(source: str, entry: str = "main", seed: int = 0, max_steps: int = 50_000):
    return run_program(build(source), entry=entry, seed=seed, max_steps=max_steps)


class TestChannelValue:
    def test_buffered_fifo(self):
        ch = Channel(2, "int")
        assert ch.try_send(1)[0]
        assert ch.try_send(2)[0]
        assert not ch.try_send(3)[0]
        ok, value, flag, _ = ch.try_recv()
        assert (ok, value, flag) == (True, 1, True)

    def test_unbuffered_send_blocks(self):
        ch = Channel(0, "int")
        assert ch.try_send(1) == (False, None)

    def test_recv_from_empty_blocks(self):
        ch = Channel(1, "int")
        assert ch.try_recv()[0] is False

    def test_closed_recv_zero_value(self):
        ch = Channel(0, "int")
        ch.close()
        ok, value, flag, _ = ch.try_recv()
        assert (ok, value, flag) == (True, 0, False)

    def test_send_on_closed_panics(self):
        ch = Channel(1, "int")
        ch.close()
        with pytest.raises(GoPanic):
            ch.try_send(1)

    def test_double_close_panics(self):
        ch = Channel(0, "int")
        ch.close()
        with pytest.raises(GoPanic):
            ch.close()

    def test_closed_drains_buffer_first(self):
        ch = Channel(2, "string")
        ch.try_send("a")
        ch.close()
        assert ch.try_recv()[1] == "a"
        ok, value, flag, _ = ch.try_recv()
        assert (value, flag) == ("", False)


class TestBasicExecution:
    def test_arithmetic_and_output(self):
        result = run("func main() {\n\tprintln(2+3*4, 10%3, 7/2)\n}")
        assert result.output == ["14 1 3"]

    def test_buffered_channel_round_trip(self):
        result = run(
            "func main() {\n\tch := make(chan int, 2)\n\tch <- 1\n\tch <- 2\n"
            "\tprintln(<-ch, <-ch)\n}"
        )
        assert result.output == ["1 2"]

    def test_rendezvous(self):
        result = run(
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 99\n\t}()\n"
            "\tprintln(<-ch)\n}"
        )
        assert result.output == ["99"]
        assert not result.blocked_forever

    def test_range_over_closed_channel(self):
        result = run(
            "func main() {\n\tch := make(chan int, 3)\n"
            "\tch <- 1\n\tch <- 2\n\tch <- 3\n\tclose(ch)\n"
            "\ttotal := 0\n\tfor v := range ch {\n\t\ttotal = total + v\n\t}\n"
            "\tprintln(total)\n}"
        )
        assert result.output == ["6"]

    def test_select_default(self):
        result = run(
            "func main() {\n\tch := make(chan int)\n"
            "\tselect {\n\tcase <-ch:\n\t\tprintln(\"recv\")\n"
            "\tdefault:\n\t\tprintln(\"default\")\n\t}\n}"
        )
        assert result.output == ["default"]

    def test_recv_ok_flag(self):
        result = run(
            "func main() {\n\tch := make(chan int, 1)\n\tclose(ch)\n"
            "\tv, ok := <-ch\n\tprintln(v, ok)\n}"
        )
        assert result.output == ["0 False"]

    def test_function_calls_and_returns(self):
        result = run(
            "func add(a int, b int) int {\n\treturn a + b\n}\n"
            "func main() {\n\tprintln(add(3, 4))\n}"
        )
        assert result.output == ["7"]

    def test_multi_return(self):
        result = run(
            "func two() (int, int) {\n\treturn 1, 2\n}\n"
            "func main() {\n\ta, b := two()\n\tprintln(a, b)\n}"
        )
        assert result.output == ["1 2"]

    def test_method_dispatch(self):
        result = run(
            "type box struct {\n\tv int\n}\n"
            "func (b *box) get() int {\n\treturn b.v\n}\n"
            "func main() {\n\tb := box{v: 5}\n\tprintln(b.get())\n}"
        )
        assert result.output == ["5"]

    def test_closure_captures_by_reference(self):
        result = run(
            "func main() {\n\tx := 0\n\tdone := make(chan int)\n"
            "\tgo func() {\n\t\tx = 41\n\t\tdone <- 1\n\t}()\n"
            "\t<-done\n\tprintln(x + 1)\n}"
        )
        assert result.output == ["42"]

    def test_external_functions_return_zero(self):
        result = run("func main() {\n\tv := mystery()\n\tprintln(v)\n}")
        assert result.output == ["0"]


class TestMutexesAndWaitGroups:
    def test_mutex_serializes(self):
        source = (
            "func main() {\n\tvar mu sync.Mutex\n\tvar wg sync.WaitGroup\n\tn := 0\n"
            "\tfor i := 0; i < 4; i++ {\n\t\twg.Add(1)\n"
            "\t\tgo func() {\n\t\t\tmu.Lock()\n\t\t\tn = n + 1\n\t\t\tmu.Unlock()\n"
            "\t\t\twg.Done()\n\t\t}()\n\t}\n\twg.Wait()\n\tprintln(n)\n}"
        )
        for seed in (0, 3, 9):
            assert run(source, seed=seed).output == ["4"]

    def test_unlock_of_unlocked_panics(self):
        result = run("func main() {\n\tvar mu sync.Mutex\n\tmu.Unlock()\n}")
        assert result.panicked

    def test_negative_waitgroup_panics(self):
        result = run("func main() {\n\tvar wg sync.WaitGroup\n\twg.Done()\n}")
        assert result.panicked

    def test_deferred_unlock_runs(self):
        result = run(
            "func locked() {\n\tvar mu sync.Mutex\n\tmu.Lock()\n\tdefer mu.Unlock()\n"
            "\tprintln(\"in\")\n}\n"
            "func main() {\n\tlocked()\n\tprintln(\"out\")\n}"
        )
        assert result.output == ["in", "out"]


class TestDefersAndPanics:
    def test_defer_close_unblocks_ranger(self):
        result = run(
            "func main() {\n\tch := make(chan int, 1)\n"
            "\tgo func() {\n\t\tfor v := range ch {\n\t\t\tprintln(v)\n\t\t}\n\t}()\n"
            "\tproduce(ch)\n}\n"
            "func produce(ch chan int) {\n\tdefer close(ch)\n\tch <- 8\n}"
        )
        assert not result.blocked_forever

    def test_deferred_send_blocks_until_received(self):
        result = run(
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tprintln(<-ch)\n\t}()\n"
            "\tsend(ch)\n}\n"
            "func send(ch chan int) {\n\tdefer func() {\n\t\tch <- 5\n\t}()\n}"
        )
        assert result.output == ["5"]

    def test_panic_reported(self):
        result = run('func main() {\n\tpanic("boom")\n}')
        assert result.panicked
        assert result.panic_message == "boom"

    def test_divide_by_zero_panics(self):
        result = run("func main() {\n\tx := 0\n\tprintln(1 / x)\n}")
        assert result.panicked

    def test_fatal_marks_test_failed(self):
        result = run(
            'func TestX(t *testing.T) {\n\tt.Fatalf("no")\n\tprintln("unreached")\n}',
            entry="TestX",
        )
        assert result.test_failed
        assert result.output == []


class TestDeadlockOracle:
    def test_global_deadlock_detected(self):
        result = run("func main() {\n\tch := make(chan int)\n\tch <- 1\n}")
        assert result.global_deadlock
        assert result.blocked_lines() == [4]  # +1 for the package clause

    def test_leaked_goroutine_detected(self):
        result = run(
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(\"bye\")\n}"
        )
        assert not result.global_deadlock
        assert len(result.leaked) == 1
        assert result.leaked[0].blocked_kind == "send"

    def test_self_deadlock_double_lock(self):
        result = run("func main() {\n\tvar mu sync.Mutex\n\tmu.Lock()\n\tmu.Lock()\n}")
        assert result.global_deadlock

    def test_nil_channel_send_blocks(self):
        result = run(
            "func main() {\n\tvar ch chan int\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(\"go\")\n}"
        )
        assert result.leaked

    def test_wg_wait_forever(self):
        result = run("func main() {\n\tvar wg sync.WaitGroup\n\twg.Add(1)\n\twg.Wait()\n}")
        assert result.global_deadlock

    def test_step_limit_reported(self):
        result = run("func main() {\n\tfor {\n\t\tprintln(\"spin\")\n\t}\n}", max_steps=200)
        assert result.hit_step_limit


class TestSchedulerProperties:
    def test_same_seed_same_execution(self):
        source = (
            "func main() {\n\tch := make(chan int, 3)\n"
            "\tfor i := 0; i < 3; i++ {\n\t\tgo func() {\n\t\t\tch <- i\n\t\t}()\n\t}\n"
            "\tprintln(<-ch, <-ch, <-ch)\n}"
        )
        a = run(source, seed=11)
        b = run(source, seed=11)
        assert a.output == b.output
        assert a.steps == b.steps

    def test_select_nondeterminism_across_seeds(self):
        source = (
            "func main() {\n\ta := make(chan int, 1)\n\tb := make(chan int, 1)\n"
            "\ta <- 1\n\tb <- 2\n"
            "\tselect {\n\tcase v := <-a:\n\t\tprintln(v)\n"
            "\tcase v := <-b:\n\t\tprintln(v)\n\t}\n}"
        )
        outputs = {tuple(run(source, seed=s).output) for s in range(20)}
        assert outputs == {("1",), ("2",)}

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_determinism_property(self, seed):
        source = (
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 7\n\t}()\n\tprintln(<-ch)\n}"
        )
        first = run(source, seed=seed)
        second = run(source, seed=seed)
        assert first.output == second.output
        assert first.goroutine_steps == second.goroutine_steps

    def test_explore_schedules_counts(self):
        source = "func main() {\n\tprintln(\"hi\")\n}"
        results = explore_schedules(build(source), seeds=5)
        assert len(results) == 5
        assert all(r.output == ["hi"] for r in results)
