"""Tests for the automated patch-validation framework (§6 future work)."""

import pytest

from repro.api import Project
from repro.corpus.snippets import ALL_SNIPPETS
from repro.fixer.patch import LineEdit, Patch
from repro.fixer.validate import validate_patch
from repro.runtime.explorer import explore


def _fix_for(source: str, filename: str = "v.go"):
    project = Project.from_source(source, filename)
    bugs = project.detect().bmoc.bmoc_channel_bugs()
    assert bugs
    return project, project.fix(bugs[0])


class TestCorrectPatches:
    @pytest.mark.parametrize("sn", ALL_SNIPPETS, ids=lambda s: s.name)
    def test_figure_patches_validate(self, sn):
        project, fix = _fix_for(sn.source, sn.name + ".go")
        entry = "main" if "main" in project.program.functions else sn.entry
        validation = validate_patch(sn.source, fix, entry=entry, seeds=15)
        assert validation.correct, validation.render()
        assert validation.static_clean
        assert validation.dynamic_clean
        assert validation.semantics_preserved

    def test_render_mentions_verdict(self):
        sn = ALL_SNIPPETS[0]
        project, fix = _fix_for(sn.source)
        validation = validate_patch(sn.source, fix, entry="main", seeds=5)
        assert "CORRECT" in validation.render()


class TestMetamorphicPatchProperty:
    """The metamorphic relation behind GFix: patching removes *every*
    leaking schedule while the unpatched program provably has at least one.
    Checked with the systematic explorer, not sampling: for bounded-space
    programs the "zero leaks" claim is a proof, and for loop-shaped
    programs whose space exceeds the bound the leak-freedom claim degrades
    (and the exploration honestly reports ``complete=False``)."""

    @pytest.mark.parametrize("sn", ALL_SNIPPETS, ids=lambda s: s.name)
    def test_patch_removes_all_leaking_schedules(self, sn):
        project, fix = _fix_for(sn.source, sn.name + ".go")
        assert fix.fixed, fix.reason
        entry = "main" if "main" in project.program.functions else sn.entry

        unpatched = explore(project.program, entry=entry)
        assert unpatched.any_leak, "unpatched program must have a leaking schedule"

        patched = project.apply_fix(fix)
        patched_exp = explore(patched.program, entry=entry)
        assert not patched_exp.any_leak, (
            f"patch left a leaking schedule: {patched_exp.render()}"
        )

    def test_bounded_space_patches_are_proven(self):
        # the non-loop snippets complete exhaustively: leak-freedom is a proof
        proven = 0
        for sn in ALL_SNIPPETS:
            project, fix = _fix_for(sn.source, sn.name + ".go")
            entry = "main" if "main" in project.program.functions else sn.entry
            patched_exp = explore(project.apply_fix(fix).program, entry=entry)
            if patched_exp.complete:
                assert patched_exp.leak_free
                proven += 1
        assert proven >= 2  # buffer- and defer-strategy patches both complete


class TestExplorationModes:
    def test_bounded_program_validates_exhaustively(self):
        sn = next(s for s in ALL_SNIPPETS if s.name == "docker_exec")
        project, fix = _fix_for(sn.source, sn.name + ".go")
        validation = validate_patch(sn.source, fix, entry="main")
        assert validation.exhaustive
        assert not validation.fallback
        assert validation.correct
        assert "exhaustive" in validation.render()

    def test_unbounded_program_falls_back_and_logs(self, caplog):
        import logging

        sn = next(s for s in ALL_SNIPPETS if s.name == "ethereum_interactive")
        project, fix = _fix_for(sn.source, sn.name + ".go")
        with caplog.at_level(logging.WARNING, logger="repro.fixer.validate"):
            validation = validate_patch(sn.source, fix, entry="main", seeds=8, max_runs=64)
        assert validation.fallback
        assert not validation.exhaustive
        assert validation.correct
        assert any("falling back" in record.message for record in caplog.records)


class TestBrokenPatchesRejected:
    SOURCE = (
        "package main\n\nfunc main() {\n\tch := make(chan int)\n"
        "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}\n"
    )

    def test_noop_patch_rejected_statically(self):
        project, fix = _fix_for(self.SOURCE)
        # sabotage: replace the real patch with a comment-only edit
        fix.patch = Patch(
            strategy="buffer",
            description="sabotaged",
            original=self.SOURCE,
            edits=[LineEdit(after=1, new_lines=["// no actual change"])],
        )
        validation = validate_patch(self.SOURCE, fix, entry="main", seeds=10)
        assert not validation.correct
        assert not validation.static_clean
        assert validation.patched_leaks > 0

    def test_semantics_breaking_patch_rejected(self):
        source = (
            "package main\n\nfunc main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 41\n\t}()\n\tprintln(<-ch + 1)\n}\n"
        )
        project = Project.from_source(source)
        # a fake "fix" that changes the observable output
        from repro.detector.reporting import BugReport

        fake_report = BugReport(category="bmoc-chan", primitive=None)
        from repro.fixer.dispatcher import FixResult

        fix = FixResult(report=fake_report)
        fix.patch = Patch(
            strategy="buffer",
            description="breaks output",
            original=source,
            edits=[LineEdit(line=8, new_lines=["\tprintln(<-ch + 2)"])],
        )
        validation = validate_patch(source, fix, entry="main", seeds=10)
        assert not validation.semantics_preserved
        assert not validation.correct

    def test_deadlock_introducing_patch_rejected(self):
        source = (
            "package main\n\nfunc main() {\n\tch := make(chan int, 1)\n"
            "\tch <- 1\n\tprintln(<-ch)\n}\n"
        )
        from repro.detector.reporting import BugReport
        from repro.fixer.dispatcher import FixResult

        fix = FixResult(report=BugReport(category="bmoc-chan", primitive=None))
        fix.patch = Patch(
            strategy="buffer",
            description="shrinks the buffer",
            original=source,
            edits=[LineEdit(line=4, new_lines=["\tch := make(chan int)"])],
        )
        validation = validate_patch(source, fix, entry="main", seeds=5)
        assert validation.patched_leaks > 0
        assert not validation.correct
