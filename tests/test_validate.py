"""Tests for the automated patch-validation framework (§6 future work)."""

import pytest

from repro.api import Project
from repro.corpus.snippets import ALL_SNIPPETS
from repro.fixer.patch import LineEdit, Patch
from repro.fixer.validate import validate_patch


def _fix_for(source: str, filename: str = "v.go"):
    project = Project.from_source(source, filename)
    bugs = project.detect().bmoc.bmoc_channel_bugs()
    assert bugs
    return project, project.fix(bugs[0])


class TestCorrectPatches:
    @pytest.mark.parametrize("sn", ALL_SNIPPETS, ids=lambda s: s.name)
    def test_figure_patches_validate(self, sn):
        project, fix = _fix_for(sn.source, sn.name + ".go")
        entry = "main" if "main" in project.program.functions else sn.entry
        validation = validate_patch(sn.source, fix, entry=entry, seeds=15)
        assert validation.correct, validation.render()
        assert validation.static_clean
        assert validation.dynamic_clean
        assert validation.semantics_preserved

    def test_render_mentions_verdict(self):
        sn = ALL_SNIPPETS[0]
        project, fix = _fix_for(sn.source)
        validation = validate_patch(sn.source, fix, entry="main", seeds=5)
        assert "CORRECT" in validation.render()


class TestBrokenPatchesRejected:
    SOURCE = (
        "package main\n\nfunc main() {\n\tch := make(chan int)\n"
        "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}\n"
    )

    def test_noop_patch_rejected_statically(self):
        project, fix = _fix_for(self.SOURCE)
        # sabotage: replace the real patch with a comment-only edit
        fix.patch = Patch(
            strategy="buffer",
            description="sabotaged",
            original=self.SOURCE,
            edits=[LineEdit(after=1, new_lines=["// no actual change"])],
        )
        validation = validate_patch(self.SOURCE, fix, entry="main", seeds=10)
        assert not validation.correct
        assert not validation.static_clean
        assert validation.patched_leaks > 0

    def test_semantics_breaking_patch_rejected(self):
        source = (
            "package main\n\nfunc main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 41\n\t}()\n\tprintln(<-ch + 1)\n}\n"
        )
        project = Project.from_source(source)
        # a fake "fix" that changes the observable output
        from repro.detector.reporting import BugReport

        fake_report = BugReport(category="bmoc-chan", primitive=None)
        from repro.fixer.dispatcher import FixResult

        fix = FixResult(report=fake_report)
        fix.patch = Patch(
            strategy="buffer",
            description="breaks output",
            original=source,
            edits=[LineEdit(line=8, new_lines=["\tprintln(<-ch + 2)"])],
        )
        validation = validate_patch(source, fix, entry="main", seeds=10)
        assert not validation.semantics_preserved
        assert not validation.correct

    def test_deadlock_introducing_patch_rejected(self):
        source = (
            "package main\n\nfunc main() {\n\tch := make(chan int, 1)\n"
            "\tch <- 1\n\tprintln(<-ch)\n}\n"
        )
        from repro.detector.reporting import BugReport
        from repro.fixer.dispatcher import FixResult

        fix = FixResult(report=BugReport(category="bmoc-chan", primitive=None))
        fix.patch = Patch(
            strategy="buffer",
            description="shrinks the buffer",
            original=source,
            edits=[LineEdit(line=4, new_lines=["\tch := make(chan int)"])],
        )
        validation = validate_patch(source, fix, entry="main", seeds=5)
        assert validation.patched_leaks > 0
        assert not validation.correct
