"""Deeper Go-semantics tests for the runtime: select edge cases, RWMutex,
panic propagation, closures, and goroutine lifecycle."""

import pytest

from repro.runtime.scheduler import explore_schedules, run_program
from tests.conftest import build


def run(source: str, entry: str = "main", seed: int = 0, max_steps: int = 50_000):
    return run_program(build(source), entry=entry, seed=seed, max_steps=max_steps)


class TestSelectSemantics:
    def test_select_on_closed_channel_takes_recv_case(self):
        result = run(
            "func main() {\n\tch := make(chan int)\n\tclose(ch)\n"
            "\tselect {\n\tcase v, ok := <-ch:\n\t\tprintln(v, ok)\n\t}\n}"
        )
        assert result.output == ["0 False"]

    def test_select_send_case_on_closed_channel_panics(self):
        result = run(
            "func main() {\n\tch := make(chan int, 1)\n\tclose(ch)\n"
            "\tselect {\n\tcase ch <- 1:\n\t\tprintln(\"sent\")\n\t}\n}"
        )
        assert result.panicked

    def test_select_blocks_until_partner(self):
        result = run(
            "func main() {\n\ta := make(chan int)\n"
            "\tgo func() {\n\t\ttime.Sleep(10)\n\t\ta <- 5\n\t}()\n"
            "\tselect {\n\tcase v := <-a:\n\t\tprintln(v)\n\t}\n}"
        )
        assert result.output == ["5"]
        assert not result.blocked_forever

    def test_two_selects_rendezvous_with_each_other(self):
        # goroutine A selects on send, goroutine B selects on recv: the
        # second to park must find the first
        result = run(
            "func main() {\n\tc := make(chan int)\n\tdone := make(chan int, 1)\n"
            "\tgo func() {\n\t\tselect {\n\t\tcase c <- 9:\n\t\t}\n\t\tdone <- 1\n\t}()\n"
            "\tselect {\n\tcase v := <-c:\n\t\tprintln(v)\n\t}\n\t<-done\n}"
        )
        assert result.output == ["9"]
        assert not result.blocked_forever

    def test_select_default_when_nothing_ready(self):
        result = run(
            "func main() {\n\tch := make(chan int)\n"
            "\tfor i := 0; i < 3; i++ {\n"
            "\t\tselect {\n\t\tcase <-ch:\n\t\t\tprintln(\"recv\")\n"
            "\t\tdefault:\n\t\t\tprintln(\"idle\")\n\t\t}\n\t}\n}"
        )
        assert result.output == ["idle", "idle", "idle"]

    def test_select_prefers_ready_over_default(self):
        result = run(
            "func main() {\n\tch := make(chan int, 1)\n\tch <- 7\n"
            "\tselect {\n\tcase v := <-ch:\n\t\tprintln(v)\n\tdefault:\n\t\tprintln(\"no\")\n\t}\n}"
        )
        assert result.output == ["7"]


class TestRWMutex:
    def test_multiple_readers(self):
        result = run(
            "func main() {\n\tvar mu sync.RWMutex\n\tvar wg sync.WaitGroup\n"
            "\tn := 0\n"
            "\tfor i := 0; i < 3; i++ {\n\t\twg.Add(1)\n"
            "\t\tgo func() {\n\t\t\tmu.RLock()\n\t\t\tn = n + 1\n\t\t\tmu.RUnlock()\n"
            "\t\t\twg.Done()\n\t\t}()\n\t}\n\twg.Wait()\n\tprintln(n)\n}"
        )
        assert result.output == ["3"]

    def test_writer_excludes_readers(self):
        result = run(
            "func main() {\n\tvar mu sync.RWMutex\n\tmu.Lock()\n"
            "\tdone := make(chan int, 1)\n"
            "\tgo func() {\n\t\tmu.RLock()\n\t\tmu.RUnlock()\n\t\tdone <- 1\n\t}()\n"
            "\ttime.Sleep(5)\n\tmu.Unlock()\n\tprintln(<-done)\n}"
        )
        assert result.output == ["1"]
        assert not result.blocked_forever

    def test_reader_blocks_writer(self):
        result = run(
            "func main() {\n\tvar mu sync.RWMutex\n\tmu.RLock()\n\tmu.Lock()\n}"
        )
        assert result.global_deadlock


class TestPanicsAndDefers:
    def test_panic_runs_deferred_unlocks(self):
        result = run(
            "func risky(mu *sync.Mutex) {\n\tmu.Lock()\n\tdefer mu.Unlock()\n"
            '\tpanic("boom")\n}\n'
            "func main() {\n\tvar mu sync.Mutex\n\trisky(mu)\n}"
        )
        assert result.panicked
        assert result.panic_message == "boom"

    def test_panic_in_child_crashes_program(self):
        result = run(
            'func main() {\n\tgo func() {\n\t\tpanic("child")\n\t}()\n\ttime.Sleep(50)\n}'
        )
        assert result.panicked

    def test_deferred_close_during_panic_unblocks_waiter(self):
        result = run(
            "func crash(done chan int) {\n\tdefer close(done)\n\tpanic(\"x\")\n}\n"
            "func main() {\n\tdone := make(chan int)\n\tcrash(done)\n}"
        )
        assert result.panicked  # the panic still crashes, but close ran

    def test_defers_run_lifo(self):
        result = run(
            "func main() {\n\tch := make(chan int, 3)\n"
            "\tdefer func() {\n\t\tch <- 1\n\t}()\n"
            "\tdefer func() {\n\t\tch <- 2\n\t}()\n"
            "\tdefer func() {\n\t\tch <- 3\n\t}()\n"
            "\tprintln(\"body\")\n}"
        )
        # outputs nothing else; validate via step: program ends cleanly
        assert result.output == ["body"]
        assert not result.blocked_forever

    def test_defer_in_goroutine_runs_at_exit(self):
        result = run(
            "func main() {\n\tdone := make(chan int)\n"
            "\tgo func() {\n\t\tdefer close(done)\n\t\tprintln(\"work\")\n\t}()\n"
            "\t<-done\n\tprintln(\"joined\")\n}"
        )
        assert result.output == ["work", "joined"]


class TestClosuresAndScoping:
    def test_loop_variable_shared_capture(self):
        # MiniGo loop variables are a single register (pre-Go-1.22
        # semantics): captures share the final value unless copied
        result = run(
            "func main() {\n\tvar wg sync.WaitGroup\n\tsum := 0\n"
            "\tvar mu sync.Mutex\n"
            "\tfor i := 0; i < 3; i++ {\n\t\twg.Add(1)\n"
            "\t\tv := i\n"
            "\t\tgo func() {\n\t\t\tmu.Lock()\n\t\t\tsum = sum + v\n\t\t\tmu.Unlock()\n"
            "\t\t\twg.Done()\n\t\t}()\n\t}\n\twg.Wait()\n\tprintln(sum)\n}"
        )
        assert result.output == ["3"]  # 0+1+2 via the copied v

    def test_shadowed_variable_isolated(self):
        result = run(
            "func main() {\n\tx := 1\n\tif x > 0 {\n\t\tx := 10\n\t\tprintln(x)\n\t}\n"
            "\tprintln(x)\n}"
        )
        assert result.output == ["10", "1"]

    def test_method_value_receiver_mutation(self):
        result = run(
            "type acc struct {\n\tn int\n}\n"
            "func (a *acc) bump() {\n\ta.n = a.n + 1\n}\n"
            "func main() {\n\ta := acc{}\n\ta.bump()\n\ta.bump()\n\tprintln(a.n)\n}"
        )
        assert result.output == ["2"]


class TestGoroutineLifecycle:
    def test_main_exit_kills_running_children(self):
        result = run(
            "func main() {\n\tgo func() {\n\t\tfor {\n\t\t\tprintln(\"spin\")\n\t\t}\n\t}()\n"
            "\tprintln(\"bye\")\n}",
            max_steps=2000,
        )
        # the child is still RUNNABLE at exit, not blocked: no leak reported
        assert not result.leaked or result.hit_step_limit

    def test_grandchild_goroutines(self):
        result = run(
            "func main() {\n\tdone := make(chan int)\n"
            "\tgo func() {\n\t\tgo func() {\n\t\t\tdone <- 1\n\t\t}()\n\t}()\n"
            "\tprintln(<-done)\n}"
        )
        assert result.output == ["1"]

    def test_many_goroutines_fan_in(self):
        result = run(
            "func main() {\n\tch := make(chan int, 8)\n"
            "\tfor i := 0; i < 8; i++ {\n\t\tgo func() {\n\t\t\tch <- 1\n\t\t}()\n\t}\n"
            "\ttotal := 0\n\tfor j := 0; j < 8; j++ {\n\t\ttotal = total + <-ch\n\t}\n"
            "\tprintln(total)\n}"
        )
        assert result.output == ["8"]

    def test_sleep_orders_events(self):
        outputs = set()
        for seed in range(5):
            result = run(
                "func main() {\n\tch := make(chan int, 1)\n"
                "\tgo func() {\n\t\ttime.Sleep(100)\n\t\tch <- 2\n\t}()\n"
                "\tch <- 1\n\tprintln(<-ch)\n}",
                seed=seed,
            )
            outputs.add(tuple(result.output))
        # the sleeper practically always loses the race for the buffer slot
        assert ("1",) in outputs
