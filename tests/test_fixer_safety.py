"""Unit tests for GFix's shared safety analysis (paper §4.1)."""

from repro.api import Project
from repro.fixer.safety import (
    BugShape,
    analyze_shape,
    op_in_loop,
    recv_value_used,
    side_effects_after,
)
from repro.ssa import ir
from tests.conftest import build


def shape_of(source: str) -> BugShape:
    project = Project.from_source(
        source if source.lstrip().startswith("package") else "package main\n" + source
    )
    bugs = project.detect().bmoc.bmoc_channel_bugs()
    assert bugs
    return analyze_shape(project.program, bugs[0])


class TestShapeAnalysis:
    LEAKY = (
        "func main() {\n\tch := make(chan int)\n"
        "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}"
    )

    def test_child_identified(self):
        shape = shape_of(self.LEAKY)
        assert shape.child_func == "main$lit1"
        assert shape.creator_func == "main"
        assert shape.blocked_in_child
        assert shape.reject_reason is None

    def test_child_ops_collected(self):
        shape = shape_of(self.LEAKY)
        assert [op.kind for op in shape.child_ops] == ["send"]

    def test_parent_blocked_rejected(self):
        shape = shape_of(
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tselect {\n\t\tcase ch <- 1:\n\t\tdefault:\n\t\t}\n\t}()\n"
            "\t<-ch\n}"
        )
        assert not shape.blocked_in_child
        assert shape.reject_reason == "parent-blocked"

    def test_two_children_rejected(self):
        shape = shape_of(
            "func a() int {\n\treturn 1\n}\nfunc b() int {\n\treturn 2\n}\n"
            "func run(ctx context.Context) int {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- a()\n\t}()\n"
            "\tgo func() {\n\t\tch <- b()\n\t}()\n"
            "\tselect {\n\tcase v := <-ch:\n\t\treturn v\n\tcase <-ctx.Done():\n\t\treturn 0\n\t}\n}"
        )
        assert shape.reject_reason == "complex-goroutines"

    def test_spawn_in_loop_flagged(self):
        shape = shape_of(
            "func run(ctx context.Context) {\n\tch := make(chan int)\n"
            "\tfor i := 0; i < 3; i++ {\n"
            "\t\tgo func() {\n\t\t\tch <- i\n\t\t}()\n\t}\n"
            "\tselect {\n\tcase <-ch:\n\tcase <-ctx.Done():\n\t}\n}"
        )
        assert shape.spawn_in_loop


class TestSideEffects:
    def _after(self, source: str):
        project = Project.from_source("package main\n" + source)
        program = project.program
        child = program.functions["main$lit1"]
        send = next(i for i in child.instructions() if isinstance(i, ir.Send))
        return side_effects_after(program, "main$lit1", send)

    def test_clean_tail(self):
        effects = self._after(
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}"
        )
        assert effects == []

    def test_println_allowed(self):
        effects = self._after(
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t\tprintln(\"done\")\n\t}()\n\tprintln(0)\n}"
        )
        assert effects == []

    def test_outer_write_flagged(self):
        effects = self._after(
            "func main() {\n\tch := make(chan int)\n\tflag := 0\n"
            "\tgo func() {\n\t\tch <- 1\n\t\tflag = 1\n\t}()\n\tprintln(flag)\n}"
        )
        assert any("writes outer variable" in e for e in effects)

    def test_call_flagged(self):
        effects = self._after(
            "func cleanup() {\n}\n"
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t\tcleanup()\n\t}()\n\tprintln(0)\n}"
        )
        assert any("calls cleanup" in e for e in effects)

    def test_sync_op_flagged(self):
        effects = self._after(
            "func main() {\n\tch := make(chan int)\n\tother := make(chan int, 1)\n"
            "\tgo func() {\n\t\tch <- 1\n\t\tother <- 2\n\t}()\n\tprintln(0)\n}"
        )
        assert any("channel operation" in e for e in effects)

    def test_local_write_allowed(self):
        effects = self._after(
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t\tx := 2\n\t\tprintln(x)\n\t}()\n\tprintln(0)\n}"
        )
        assert effects == []


class TestLoopAndRecvQueries:
    def test_op_in_loop(self):
        project = Project.from_source(
            "package main\nfunc main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tfor {\n\t\t\tch <- 1\n\t\t}\n\t}()\n\tprintln(0)\n}"
        )
        bugs = project.detect().bmoc.bmoc_channel_bugs()
        shape = analyze_shape(project.program, bugs[0])
        assert op_in_loop(project.program, shape.child_ops[0])

    def test_op_not_in_loop(self):
        project = Project.from_source(
            "package main\nfunc main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}"
        )
        bugs = project.detect().bmoc.bmoc_channel_bugs()
        shape = analyze_shape(project.program, bugs[0])
        assert not op_in_loop(project.program, shape.child_ops[0])

    def test_recv_value_used(self):
        project = Project.from_source(
            "package main\nfunc main() {\n\tch := make(chan int, 1)\n\tch <- 1\n"
            "\tv := <-ch\n\tprintln(v)\n}"
        )
        program = project.program
        recv = next(
            i for i in program.functions["main"].instructions() if isinstance(i, ir.Recv)
        )
        from repro.analysis.primitives import Operation
        from repro.analysis.alias import Site

        operation = Operation(
            site=Site("chan", "main", 3, "ch"), kind="recv", function="main", instr=recv, line=5
        )
        assert recv_value_used(program, operation)

    def test_recv_value_discarded(self):
        project = Project.from_source(
            "package main\nfunc main() {\n\tch := make(chan int, 1)\n\tch <- 1\n\t<-ch\n}"
        )
        program = project.program
        recv = next(
            i
            for i in program.functions["main"].instructions()
            if isinstance(i, ir.Recv) and i.dst is None
        )
        from repro.analysis.primitives import Operation
        from repro.analysis.alias import Site

        operation = Operation(
            site=Site("chan", "main", 3, "ch"), kind="recv", function="main", instr=recv, line=5
        )
        assert not recv_value_used(program, operation)


