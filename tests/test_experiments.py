"""Tests for the experiment-runner layer (repro.report.experiments)."""

import pytest

from repro.corpus.apps import corpus_app
from repro.report.experiments import (
    AppEvaluation,
    ChannelVerdict,
    CorpusEvaluation,
    evaluate_app,
    evaluate_corpus,
)


@pytest.fixture(scope="module")
def bbolt_eval():
    return evaluate_app(corpus_app("bbolt"))


class TestAppEvaluation:
    def test_bmoc_counts(self, bbolt_eval):
        assert bbolt_eval.bmoc_counts("bmoc-chan") == (2, 0)
        assert bbolt_eval.bmoc_counts("bmoc-mutex") == (0, 0)

    def test_traditional_counts(self, bbolt_eval):
        assert bbolt_eval.traditional_verdicts["fatal-goroutine"] == (4, 0)
        assert bbolt_eval.traditional_verdicts["forget-unlock"] == (0, 0)

    def test_fix_counts(self, bbolt_eval):
        assert bbolt_eval.fix_counts() == {"buffer": 1, "defer": 0, "stop": 1}

    def test_every_verdict_matched_to_a_seed(self, bbolt_eval):
        for verdict in bbolt_eval.bmoc_verdicts:
            assert verdict.instance is not None
            assert verdict.instance.category.startswith("bmoc")

    def test_verdict_real_flag(self, bbolt_eval):
        assert all(v.is_real for v in bbolt_eval.bmoc_verdicts)

    def test_elapsed_recorded(self, bbolt_eval):
        assert bbolt_eval.elapsed_seconds > 0


class TestCorpusEvaluation:
    @pytest.fixture(scope="class")
    def small(self):
        return evaluate_corpus(names=["bbolt", "Gin", "frp"])

    def test_subset_selection(self, small):
        # subsets preserve Table 1 row order, not request order
        assert [e.app.name for e in small.evaluations] == ["Gin", "frp", "bbolt"]

    def test_table_rows_include_total(self, small):
        rows = small.table1_rows()
        assert rows[-1]["app"] == "Total"
        assert rows[-1]["bmoc_c"] == "2(0)"

    def test_render_is_aligned_text(self, small):
        text = small.render()
        lines = text.split("\n")
        assert len({len(l) for l in lines[1:4]}) <= 2  # header/sep/rows aligned

    def test_totals_accumulate(self, small):
        totals = small.totals()
        assert totals["bmoc_c"] == (2, 0)
        assert totals["forget_unlock"] == (1, 0)  # frp's single bug

    def test_fp_causes_empty_for_fp_free_subset(self, small):
        assert small.fp_causes() == {}

    def test_fp_causes_present_for_fp_heavy_app(self):
        evaluation = evaluate_corpus(names=["Prometheus"])
        causes = evaluation.fp_causes()
        assert sum(causes.values()) == 1  # Prometheus has exactly 1 BMOC FP


class TestChannelVerdict:
    def test_fp_cause_passthrough(self):
        from repro.corpus.templates import fp_nonreadonly

        instance = fp_nonreadonly("Vx")
        verdict = ChannelVerdict(instance=instance, category="bmoc-chan")
        assert not verdict.is_real
        assert verdict.fp_cause == "infeasible-path"

    def test_unmatched_channel_counts_as_fp(self):
        verdict = ChannelVerdict(instance=None, category="bmoc-chan")
        assert not verdict.is_real
        assert verdict.fp_cause is None
