"""Tests for the constraint system and its solver (the Z3 substitute)."""

from repro.analysis.alias import run_alias_analysis
from repro.analysis.callgraph import build_call_graph
from repro.analysis.dependency import build_dependency_graph, compute_pset
from repro.analysis.primitives import find_primitives
from repro.analysis.scope import compute_all_scopes
from repro.constraints.encoding import StopPoint, encode
from repro.constraints.solver import solve
from repro.constraints.variables import (
    BufferSizeConst,
    ChanStateVar,
    ClosedVar,
    MatchVar,
    OrderVar,
)
from repro.detector.paths import OpEvent, PathEnumerator, enumerate_combinations
from repro.detector.suspicious import enumerate_groups
from tests.conftest import build


def setup(source: str, channel_label: str = None):
    prog = build(source)
    cg = build_call_graph(prog)
    alias = run_alias_analysis(prog, cg)
    pmap = find_primitives(prog, cg, alias)
    scopes = compute_all_scopes(pmap, cg)
    deps = build_dependency_graph(prog, cg, pmap)
    channels = [p for p in pmap if p.site.kind == "chan"]
    if channel_label:
        channels = [p for p in channels if p.site.label.startswith(channel_label)]
    chan = channels[0]
    pset = compute_pset(chan, deps, scopes)
    scope = scopes[chan]
    enumerator = PathEnumerator(prog, cg, alias, pmap, pset, scope.functions)
    combos = enumerate_combinations(enumerator, scope.lca)
    return chan, combos


def groups_of(combo):
    return list(enumerate_groups(combo))


class TestVariables:
    def test_printable_forms(self):
        assert str(OrderVar(7)) == "O7"
        assert str(MatchVar(1, 2)) == "P(s1,r2)"
        assert str(BufferSizeConst("ch", 0)) == "BS[ch]=0"
        assert str(ChanStateVar(3, "ch")) == "CB3[ch]"
        assert str(ClosedVar(4, "ch")) == "CLOSED4[ch]"


class TestEncoding:
    SIMPLE = (
        "func f() {\n\tch := make(chan int)\n"
        "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}"
    )

    def test_per_goroutine_order_constraints(self):
        chan, combos = setup(
            "func f() {\n\tch := make(chan int, 2)\n\tch <- 1\n\tch <- 2\n\t<-ch\n}"
        )
        # some group stops late enough that two occurrences remain ordered
        constrained = []
        for combo in combos:
            for group in groups_of(combo):
                constrained.extend(encode(combo, group).order_constraints)
        assert constrained

    def test_spawn_constraint_links_child(self):
        chan, combos = setup(self.SIMPLE)
        combo = combos[0]
        groups = groups_of(combo)
        system = encode(combo, groups[0])
        child_gids = [g for g in system.spawn_of if system.spawn_of[g] is not None]
        assert child_gids

    def test_truncation_before_stop(self):
        chan, combos = setup(self.SIMPLE)
        combo = combos[0]
        stop_group = groups_of(combo)[0]
        system = encode(combo, stop_group)
        stop_gid = stop_group[0].gid
        # the stopped goroutine's event list excludes the stop event
        events = system.per_goroutine[stop_gid]
        assert all(occ.event is not stop_group[0].event for occ in events)

    def test_buffer_sizes_recorded(self):
        chan, combos = setup(self.SIMPLE)
        combo = combos[0]
        system = encode(combo, groups_of(combo)[0])
        assert chan in system.buffer_sizes
        assert system.buffer_sizes[chan] == 0

    def test_render_mentions_phases(self):
        chan, combos = setup(self.SIMPLE)
        combo = combos[0]
        system = encode(combo, groups_of(combo)[0])
        text = system.render()
        assert "Φ_order" in text and "Φ_B" in text


class TestSolver:
    def _solve_all(self, source, channel_label=None):
        """Return (sat_groups, unsat_groups) across all combos of a channel."""
        chan, combos = setup(source, channel_label)
        sat, unsat = [], []
        for combo in combos:
            for group in groups_of(combo):
                system = encode(combo, group)
                solution = solve(system)
                (sat if solution is not None else unsat).append((group, solution))
        return sat, unsat

    def test_unreceived_send_is_sat(self):
        sat, _ = self._solve_all(
            "func f() {\n\tch := make(chan int)\n\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}"
        )
        assert sat

    def test_balanced_rendezvous_is_unsat(self):
        sat, unsat = self._solve_all(
            "func f() {\n\tch := make(chan int)\n\tgo func() {\n\t\tch <- 1\n\t}()\n\t<-ch\n}"
        )
        assert not sat
        assert unsat

    def test_buffered_send_not_blocked(self):
        sat, _ = self._solve_all(
            "func f() {\n\tch := make(chan int, 1)\n\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}"
        )
        assert not sat

    def test_close_unblocks_receiver(self):
        sat, _ = self._solve_all(
            "func f() {\n\tch := make(chan int)\n\tgo func() {\n\t\tclose(ch)\n\t}()\n\t<-ch\n}"
        )
        assert not sat

    def test_missing_close_blocks_receiver(self):
        sat, _ = self._solve_all(
            "func f() {\n\tch := make(chan int)\n\tgo func() {\n\t\tprintln(1)\n\t}()\n\t<-ch\n}"
        )
        assert sat

    def test_mutex_deadlock_found(self):
        sat, _ = self._solve_all(
            "func f() {\n\tvar mu sync.Mutex\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tmu.Lock()\n\t\tch <- 1\n\t\tmu.Unlock()\n\t}()\n"
            "\tmu.Lock()\n\t<-ch\n\tmu.Unlock()\n}"
        )
        assert sat

    def test_mutex_correct_order_unsat(self):
        sat, _ = self._solve_all(
            "func f() {\n\tvar mu sync.Mutex\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tmu.Lock()\n\t\tmu.Unlock()\n\t\tch <- 1\n\t}()\n"
            "\tmu.Lock()\n\tmu.Unlock()\n\t<-ch\n}"
        )
        assert not sat

    def test_witness_has_schedule_and_orders(self):
        sat, _ = self._solve_all(
            "func f() {\n\tch := make(chan int)\n\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}"
        )
        group, solution = sat[0]
        orders = solution.order_assignment()
        assert orders
        values = list(orders.values())
        assert values == sorted(values)
        assert "CB[" in solution.render()

    def test_rendezvous_matches_share_order(self):
        chan, combos = setup(
            "func f() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t\tch <- 2\n\t}()\n\t<-ch\n\tprintln(0)\n}"
        )
        found = None
        for combo in combos:
            for group in groups_of(combo):
                system = encode(combo, group)
                solution = solve(system)
                if solution is not None and solution.matches:
                    found = solution
        assert found is not None
        orders = found.order_assignment()
        for send_occ, recv_occ in found.matches:
            assert orders[send_occ] == orders[recv_occ]

    def test_waitgroup_channel_deadlock(self):
        # child: Wait then send; parent: recv then Done — circular wait.
        # The wg joins the channel's Pset because Done can unblock Wait.
        sat, _ = self._solve_all(
            "func f() {\n\tvar wg sync.WaitGroup\n\tch := make(chan int)\n"
            "\twg.Add(1)\n"
            "\tgo func() {\n\t\twg.Wait()\n\t\tch <- 1\n\t}()\n"
            "\t<-ch\n\twg.Done()\n}"
        )
        assert sat

    def test_waitgroup_without_done_not_modeled(self):
        # with no Done anywhere, the wg never joins the Pset (no unblocking
        # operation), so this blocking bug is missed — the paper's
        # "unmodeled primitive" blind spot
        sat, _ = self._solve_all(
            "func f() {\n\tvar wg sync.WaitGroup\n\tch := make(chan int)\n"
            "\twg.Add(1)\n"
            "\tgo func() {\n\t\twg.Wait()\n\t\tch <- 1\n\t}()\n"
            "\t<-ch\n}"
        )
        assert not sat

    def test_select_default_requires_blocked_cases(self):
        # default is only choosable when no case can proceed; with a
        # buffered channel, the send case is always ready, so combos through
        # default are unsatisfiable and no bug is reported
        sat, _ = self._solve_all(
            "func f() {\n\tch := make(chan int, 1)\n"
            "\tgo func() {\n\t\tselect {\n\t\tcase ch <- 1:\n\t\tdefault:\n\t\t}\n\t}()\n"
            "\t<-ch\n}"
        )
        assert not sat
