"""Tests for multi-tenant serving: the tenant registry, cross-tenant
cache sharing, serial/concurrent result parity, and per-tenant telemetry.

The load-bearing guarantees:

* one daemon holds N resident projects; requests address them with the
  ``tenant`` field and the default tenant keeps the single-project wire
  behavior byte-for-byte;
* the result cache is shared across tenants *safely* — fingerprints are
  content-addressed (no paths, no tenant ids), so tenant B analyzing the
  same code tenant A already analyzed warm-hits the solver cache;
* running detect over the whole 49-program corpus through a 4-worker
  daemon produces byte-identical analysis results to a serial daemon;
* counters, distributions and journal records are tenant-labelled, and
  ``repro top --tenant`` filters on them.
"""

import json
import threading

import pytest

from repro.cli import main as cli_main
from repro.corpus.bugset import build_bug_set
from repro.obs import filter_records, render_top, summarize
from repro.service import AnalysisService, Request
from repro.service.protocol import INVALID_PARAMS

BUGGY = """package main

func main() {
\tch := make(chan int)
\tgo func() {
\t\tch <- 1
\t}()
}
"""

CLEAN = """package main

func main() {
\tch := make(chan int, 1)
\tch <- 1
}
"""


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "buggy.go"
    path.write_text(BUGGY)
    return str(path)


def ok(response):
    assert "error" not in response, response
    return response["result"]


# -- registry & addressing --------------------------------------------------


class TestTenantRegistry:
    def test_register_then_address_by_tenant(self, buggy_file, tmp_path):
        clean = tmp_path / "b" / "clean.go"
        clean.parent.mkdir()
        clean.write_text(CLEAN)
        service = AnalysisService(buggy_file, workers=1).start()
        try:
            result = ok(
                service.call("register", {"tenant": "b", "path": str(clean)})
            )
            assert result["ok"] is True
            assert result["tenant"] == "b"
            # requests route to the tenant's own resident project
            pong = ok(service.call("ping", tenant="b"))
            assert pong["tenant"] == "b"
            assert pong["project"] == str(clean)
            assert pong["tenants"] == 2
            default_pong = ok(service.call("ping"))
            assert default_pong["tenant"] == "default"
            assert default_pong["project"] == buggy_file
            # and the two tenants see different analysis results
            assert len(ok(service.call("detect", tenant="b"))["reports"]) == 0
            assert len(ok(service.call("detect"))["reports"]) == 1
            listing = ok(service.call("tenants"))
            assert sorted(t["tenant"] for t in listing["tenants"]) == [
                "b",
                "default",
            ]
        finally:
            service.stop()

    def test_register_validation(self, buggy_file, tmp_path):
        service = AnalysisService(buggy_file, workers=1).start()
        try:
            no_path = service.call("register", {"tenant": "b"})
            assert no_path["error"]["code"] == INVALID_PARAMS
            bad_weight = service.call(
                "register",
                {"tenant": "b", "path": buggy_file, "weight": True},
            )
            assert bad_weight["error"]["code"] == INVALID_PARAMS
            missing = service.call(
                "register",
                {"tenant": "b", "path": str(tmp_path / "nope.go")},
            )
            assert missing["error"]["code"] == INVALID_PARAMS
            # the default tenant cannot be re-pointed at another project
            other = tmp_path / "other.go"
            other.write_text(CLEAN)
            repoint = service.call(
                "register", {"tenant": "default", "path": str(other)}
            )
            assert repoint["error"]["code"] == INVALID_PARAMS
            # a failed register leaves the registry untouched
            assert ok(service.call("ping"))["tenants"] == 1
        finally:
            service.stop()

    def test_reregister_same_path_updates_weight(self, buggy_file, tmp_path):
        clean = tmp_path / "clean.go"
        clean.write_text(CLEAN)
        service = AnalysisService(buggy_file, workers=1).start()
        try:
            first = ok(service.call("register", {"tenant": "b", "path": str(clean)}))
            again = ok(
                service.call(
                    "register", {"tenant": "b", "path": str(clean), "weight": 3}
                )
            )
            assert again["weight"] == 3.0
            assert first["generation"] == again["generation"]
            assert ok(service.call("ping"))["tenants"] == 2
        finally:
            service.stop()


# -- shared cross-tenant cache ----------------------------------------------


class TestSharedCache:
    def test_cross_tenant_warm_cache(self, tmp_path):
        """Tenant B analyzing the same code tenant A already analyzed
        must warm-hit the shared cache: >=90% of shards solver-skip."""
        dir_a = tmp_path / "a"
        dir_b = tmp_path / "b"
        for d in (dir_a, dir_b):
            d.mkdir()
            (d / "main.go").write_text(BUGGY)
        service = AnalysisService(str(dir_a / "main.go"), workers=1).start()
        try:
            cold = ok(service.call("detect"))
            assert cold["shards"]["cached"] == 0
            ok(service.call("register", {"tenant": "b", "path": str(dir_b / "main.go")}))
            warm = ok(service.call("detect", tenant="b"))
            assert warm["shards"]["total"] > 0
            assert warm["shards"]["skip_rate"] >= 0.9
            assert warm["reports"] == cold["reports"]
        finally:
            service.stop()


# -- serial vs concurrent parity --------------------------------------------


def detect_parity_view(payload: dict) -> str:
    """The deterministic slice of a detect payload: analysis results,
    not wall-clock or cache-warmth accounting (those legitimately vary
    with worker interleaving)."""
    shards = payload["shards"]
    view = {
        "generation": payload["generation"],
        "reports": payload["reports"],
        "bmoc": payload["bmoc"],
        "traditional": payload["traditional"],
        "health": payload["health"],
        "code": payload["code"],
        "timed_out": payload["timed_out"],
        "shards": {
            "total": shards["total"],
            "timeout": shards["timeout"],
            "failed": shards["failed"],
        },
        "incidents": payload.get("incidents"),
    }
    return json.dumps(view, sort_keys=True)


class TestConcurrentParity:
    @pytest.fixture(scope="class")
    def corpus_dir(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("corpus")
        paths = {}
        for case in build_bug_set():
            d = root / case.case_id
            d.mkdir()
            (d / "main.go").write_text(case.source)
            paths[case.case_id] = str(d / "main.go")
        return paths

    def run_corpus(self, paths, workers):
        first = sorted(paths)[0]
        service = AnalysisService(paths[first], workers=workers).start()
        results = {}
        try:
            for case_id in sorted(paths)[1:]:
                ok(service.call("register", {"tenant": case_id, "path": paths[case_id]}))
            futures = {
                case_id: service.queue.submit(
                    Request(
                        id=case_id,
                        method="detect",
                        tenant=case_id if case_id != first else "default",
                    )
                )
                for case_id in sorted(paths)
            }
            for case_id, future in futures.items():
                results[case_id] = ok(future.result(timeout=120))
        finally:
            service.stop()
        return results

    def test_workers4_detect_matches_serial_on_corpus(self, corpus_dir):
        """The acceptance gate: 49 concurrent detects (4 workers, one
        tenant per corpus program) are byte-identical to a serial run."""
        serial = self.run_corpus(corpus_dir, workers=1)
        concurrent = self.run_corpus(corpus_dir, workers=4)
        assert sorted(serial) == sorted(concurrent)
        for case_id in sorted(serial):
            assert detect_parity_view(serial[case_id]) == detect_parity_view(
                concurrent[case_id]
            ), f"case {case_id} diverged between serial and 4-worker runs"


# -- per-tenant telemetry ----------------------------------------------------


class TestTenantTelemetry:
    def test_counters_and_dists_are_tenant_labelled(self, buggy_file, tmp_path):
        clean = tmp_path / "clean.go"
        clean.write_text(CLEAN)
        service = AnalysisService(buggy_file, workers=1).start()
        try:
            ok(service.call("register", {"tenant": "b", "path": str(clean)}))
            ok(service.call("detect"))
            ok(service.call("detect", tenant="b"))
            ok(service.call("detect", tenant="b"))
            counters = service.collector.counters
            assert counters.get("tenant.default.requests") == 2  # register + detect
            assert counters.get("tenant.b.requests") == 2
            dists = service.collector.dists
            assert dists["tenant.b.request.seconds"].count == 2
            assert dists["tenant.default.request.seconds"].count == 2
            metrics = ok(service.call("metrics"))
            assert metrics["scheduler"]["workers"] == 1
            assert metrics["tenants"] == 2
        finally:
            service.stop()

    def test_journal_records_tenant_and_sheds(self, buggy_file, tmp_path):
        clean = tmp_path / "clean.go"
        clean.write_text(CLEAN)
        journal_path = tmp_path / "journal.jsonl"
        service = AnalysisService(
            buggy_file,
            workers=1,
            journal_path=str(journal_path),
            quota=1e-9,
            quota_burst=2.0,
        ).start()
        try:
            ok(service.call("register", {"tenant": "b", "path": str(clean)}))
            ok(service.call("detect"))
            ok(service.call("detect", tenant="b"))
            ok(service.call("detect", tenant="b"))
            shed = service.call("detect", tenant="b")
            assert shed["error"]["code"] is not None
        finally:
            service.stop()
        records = service.journal.read()
        detects = [r for r in records if r["method"] == "detect"]
        assert sorted(r.get("tenant") for r in detects) == ["b", "b", "b", "default"]
        only_b = filter_records(records, tenant="b")
        assert all(r["tenant"] == "b" for r in only_b)
        assert len(only_b) == 3
        summary = summarize(records)
        assert summary["sheds"] == 1
        assert summary["by_tenant"]["b"]["sheds"] == 1
        assert summary["by_tenant"]["b"]["served"] == 2
        assert summary["by_tenant"]["default"]["sheds"] == 0
        top = render_top(records)
        assert "shed rate" in top
        # the per-tenant breakdown table renders when non-default tenants exist
        assert "tenant" in top
        assert any(line.startswith("b ") for line in top.splitlines())

    def test_top_cli_tenant_filter(self, buggy_file, tmp_path, capsys):
        journal_path = tmp_path / "journal.jsonl"
        service = AnalysisService(
            buggy_file, workers=1, journal_path=str(journal_path)
        ).start()
        try:
            clean = tmp_path / "clean.go"
            clean.write_text(CLEAN)
            ok(service.call("register", {"tenant": "b", "path": str(clean)}))
            ok(service.call("detect"))
            ok(service.call("detect", tenant="b"))
        finally:
            service.stop()
        code = cli_main(
            ["top", "--journal", str(journal_path), "--tenant", "b", "--json"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert list(summary["by_tenant"]) == ["b"]
        assert summary["by_tenant"]["b"]["requests"] == 1
