"""Unit tests for the MiniGo lexer."""

import pytest
from hypothesis import given, strategies as st

from repro.golang.lexer import LexError, Token, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


class TestBasicTokens:
    def test_identifiers(self):
        assert kinds("foo bar_baz _x") == [
            ("ident", "foo"),
            ("ident", "bar_baz"),
            ("ident", "_x"),
            ("op", ";"),
        ]

    def test_keywords(self):
        out = kinds("func go chan select defer")
        assert all(kind == "keyword" for kind, _ in out)

    def test_integers(self):
        assert ("int", "42") in kinds("x := 42")

    def test_string_literal(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].kind == "string"
        assert tokens[0].text == "hello world"

    def test_string_escapes(self):
        tokens = tokenize(r'"a\nb\tc\"d"')
        assert tokens[0].text == 'a\nb\tc"d'

    def test_operators_maximal_munch(self):
        assert kinds("a <- b")[1] == ("op", "<-")
        assert kinds("a := b")[1] == ("op", ":=")
        assert kinds("a <= b")[1] == ("op", "<=")
        assert kinds("a < -b")[1] == ("op", "<")

    def test_channel_arrow_vs_less(self):
        out = [t.text for t in tokenize("ch <- 1") if t.kind == "op"]
        assert "<-" in out

    def test_positions_are_one_based(self):
        tokens = tokenize("x\ny")
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        y = [t for t in tokens if t.text == "y"][0]
        assert (y.line, y.col) == (2, 1)

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "eof"


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("x // comment\ny") == [
            ("ident", "x"),
            ("op", ";"),
            ("ident", "y"),
            ("op", ";"),
        ]

    def test_block_comment_skipped(self):
        assert kinds("a /* b c */ d")[:2] == [("ident", "a"), ("ident", "d")]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")


class TestSemicolonInsertion:
    def test_inserted_after_ident_at_newline(self):
        out = kinds("x\ny")
        assert out[1] == ("op", ";")

    def test_inserted_after_close_paren(self):
        assert ("op", ";") in kinds("f()\ng()")

    def test_inserted_after_return(self):
        out = kinds("return\nx")
        assert out[1] == ("op", ";")

    def test_not_inserted_after_operator(self):
        out = kinds("a +\nb")
        assert ("op", ";") not in out[:2]

    def test_not_inserted_after_open_brace(self):
        out = kinds("{\nx")
        assert out[1] != ("op", ";")

    def test_inserted_at_eof(self):
        out = kinds("x")
        assert out[-1] == ("op", ";")

    def test_close_brace_else_same_line(self):
        out = kinds("} else {")
        assert ("keyword", "else") in out
        assert ("op", ";") not in out


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a # b")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"line\nbreak"')

    def test_error_carries_position(self):
        try:
            tokenize("ok\n   #")
        except LexError as err:
            assert err.line == 2
        else:  # pragma: no cover
            pytest.fail("expected LexError")


class TestProperties:
    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu")), min_size=1, max_size=12))
    def test_any_alpha_word_lexes_to_one_token(self, word):
        tokens = [t for t in tokenize(word) if t.kind not in ("eof",) and t.text != ";"]
        assert len(tokens) == 1
        assert tokens[0].kind in ("ident", "keyword")

    @given(st.integers(min_value=0, max_value=10**9))
    def test_integers_round_trip(self, value):
        tokens = tokenize(str(value))
        assert tokens[0].kind == "int"
        assert int(tokens[0].text) == value

    @given(
        st.lists(
            st.sampled_from(["foo", "42", "<-", ":=", "(", ")", "{", "}", "chan", "go"]),
            min_size=1,
            max_size=20,
        )
    )
    def test_space_separated_tokens_preserved(self, parts):
        source = " ".join(parts)
        texts = [t.text for t in tokenize(source) if t.kind != "eof" and t.text != ";"]
        assert texts == parts
