"""Tests for CFG utilities and dominator/post-dominator trees."""

from repro.ssa import cfg, ir
from repro.ssa.dominators import dominator_tree, post_dominator_tree
from tests.conftest import build

DIAMOND = (
    "func f(x int) int {\n"
    "\tif x > 0 {\n"
    "\t\tprintln(1)\n"
    "\t} else {\n"
    "\t\tprintln(2)\n"
    "\t}\n"
    "\treturn x\n"
    "}"
)

LOOP = "func f(n int) {\n\tfor i := 0; i < n; i++ {\n\t\tprintln(i)\n\t}\n}"


class TestCfgQueries:
    def test_predecessors_of_join(self):
        prog = build(DIAMOND)
        func = prog.functions["f"]
        preds = cfg.predecessor_map(func)
        # some block (the join) has two predecessors
        assert any(len(p) == 2 for p in preds.values())

    def test_reverse_postorder_starts_at_entry(self):
        prog = build(DIAMOND)
        func = prog.functions["f"]
        order = cfg.reverse_postorder(func)
        assert order[0] is func.entry

    def test_reverse_postorder_covers_reachable(self):
        prog = build(LOOP)
        func = prog.functions["f"]
        assert len(cfg.reverse_postorder(func)) == len(func.reachable_blocks())

    def test_back_edges_in_loop(self):
        prog = build(LOOP)
        assert cfg.back_edges(prog.functions["f"])

    def test_no_back_edges_in_straight_line(self):
        prog = build("func f() {\n\tprintln(1)\n}")
        assert cfg.back_edges(prog.functions["f"]) == []

    def test_loop_headers_found(self):
        prog = build(LOOP)
        assert cfg.loop_headers(prog.functions["f"])

    def test_block_reaches_is_reflexive(self):
        prog = build(DIAMOND)
        entry = prog.functions["f"].entry
        assert cfg.block_reaches(entry, entry)

    def test_instr_reaches_program_order(self):
        prog = build("func f(ch chan int) {\n\tch <- 1\n\tch <- 2\n}")
        func = prog.functions["f"]
        sends = [i for i in func.instructions() if isinstance(i, ir.Send)]
        assert cfg.instr_reaches(func, sends[0], sends[1])
        assert not cfg.instr_reaches(func, sends[1], sends[0])

    def test_instr_reaches_through_loop(self):
        prog = build("func f(ch chan int) {\n\tfor {\n\t\tch <- 1\n\t}\n}")
        func = prog.functions["f"]
        send = [i for i in func.instructions() if isinstance(i, ir.Send)][0]
        assert cfg.instr_reaches(func, send, send)

    def test_exit_blocks(self):
        prog = build(DIAMOND)
        exits = cfg.exit_blocks(prog.functions["f"])
        assert len(exits) == 1
        assert isinstance(exits[0].terminator, ir.Return)


class TestDominators:
    def test_entry_dominates_all(self):
        prog = build(DIAMOND)
        func = prog.functions["f"]
        tree = dominator_tree(func)
        for block in func.reachable_blocks():
            assert tree.dominates(func.entry, block)

    def test_branch_arms_do_not_dominate_join(self):
        prog = build(DIAMOND)
        func = prog.functions["f"]
        tree = dominator_tree(func)
        join = [b for b, p in cfg.predecessor_map(func).items() if len(p) == 2]
        join_block = next(b for b in func.reachable_blocks() if b.id == join[0])
        arms = cfg.predecessor_map(func)[join_block.id]
        for arm in arms:
            assert not tree.dominates(arm, join_block)

    def test_dominance_is_reflexive(self):
        prog = build(LOOP)
        func = prog.functions["f"]
        tree = dominator_tree(func)
        for block in func.reachable_blocks():
            assert tree.dominates(block, block)

    def test_loop_header_dominates_body(self):
        prog = build(LOOP)
        func = prog.functions["f"]
        tree = dominator_tree(func)
        for src, header in cfg.back_edges(func):
            assert tree.dominates(header, src)


class TestPostDominators:
    def test_exit_post_dominates_entry(self):
        prog = build(DIAMOND)
        func = prog.functions["f"]
        tree = post_dominator_tree(func)
        exit_block = cfg.exit_blocks(func)[0]
        assert tree.post_dominates(exit_block, func.entry)

    def test_branch_arm_does_not_post_dominate_entry(self):
        prog = build(DIAMOND)
        func = prog.functions["f"]
        tree = post_dominator_tree(func)
        branch = func.entry.terminator
        assert isinstance(branch, ir.CondJump)
        assert not tree.post_dominates(branch.true_block, func.entry)

    def test_post_dominance_reflexive(self):
        prog = build(DIAMOND)
        func = prog.functions["f"]
        tree = post_dominator_tree(func)
        for block in func.reachable_blocks():
            assert tree.post_dominates(block, block)

    def test_multiple_returns(self):
        prog = build(
            "func f(x int) int {\n\tif x > 0 {\n\t\treturn 1\n\t}\n\treturn 0\n}"
        )
        func = prog.functions["f"]
        tree = post_dominator_tree(func)
        exits = cfg.exit_blocks(func)
        assert len(exits) == 2
        for exit_block in exits:
            assert not tree.post_dominates(exit_block, func.entry)
