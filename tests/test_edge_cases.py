"""Edge-case tests across modules: library scopes, patch mechanics, CLI
corpus commands, and report rendering."""

from repro.analysis.alias import run_alias_analysis
from repro.analysis.callgraph import build_call_graph
from repro.analysis.primitives import find_primitives
from repro.analysis.scope import compute_scope
from repro.cli import main
from repro.fixer.patch import LineEdit, Patch
from tests.conftest import build


class TestLibraryScope:
    def test_union_scope_when_no_single_root(self):
        # a library: producer and consumer are both entry points; no single
        # function covers all of the channel's operations, so the scope is
        # the union of the covering functions' reaches (paper §3.2)
        source = (
            "type box struct {\n\tc chan int\n}\n"
            "func Init(b *box) {\n\tb.c = make(chan int, 1)\n}\n"
            "func Put(b *box) {\n\tb.c <- 1\n}\n"
            "func Get(b *box) {\n\tprintln(<-b.c)\n}"
        )
        program = build(source)
        cg = build_call_graph(program)
        alias = run_alias_analysis(program, cg)
        pmap = find_primitives(program, cg, alias)
        chan = [p for p in pmap if p.site.kind == "chan"][0]
        scope = compute_scope(chan, cg)
        assert scope.lca is None
        assert {"Init", "Put", "Get"} <= scope.functions

    def test_single_root_preferred_over_union(self):
        source = (
            "func helper(ch chan int) {\n\tch <- 1\n}\n"
            "func Run() {\n\tch := make(chan int, 1)\n\thelper(ch)\n\tprintln(<-ch)\n}"
        )
        program = build(source)
        cg = build_call_graph(program)
        alias = run_alias_analysis(program, cg)
        pmap = find_primitives(program, cg, alias)
        chan = [p for p in pmap if p.site.kind == "chan"][0]
        scope = compute_scope(chan, cg)
        assert scope.lca == "Run"


class TestPatchEdges:
    def test_insert_before_first_line(self):
        patch = Patch("buffer", "t", "a\nb", edits=[LineEdit(after=0, new_lines=["top"])])
        assert patch.apply() == "top\na\nb"

    def test_multiple_edits_compose(self):
        patch = Patch(
            "stop",
            "t",
            "one\ntwo\nthree",
            edits=[
                LineEdit(after=1, new_lines=["inserted"]),
                LineEdit(line=3, new_lines=["THREE"]),
            ],
        )
        assert patch.apply() == "one\ninserted\ntwo\nTHREE"

    def test_delete_and_insert_same_region(self):
        patch = Patch(
            "defer",
            "t",
            "a\nb\nc",
            edits=[LineEdit(line=2, new_lines=[]), LineEdit(after=3, new_lines=["tail"])],
        )
        assert patch.apply() == "a\nc\ntail"

    def test_diff_of_empty_patch(self):
        patch = Patch("buffer", "t", "a\nb", edits=[])
        assert patch.unified_diff() == ""
        assert patch.changed_lines() == 0


class TestCliCorpusCommands:
    def test_coverage_command(self, capsys):
        code = main(["coverage"])
        out = capsys.readouterr().out
        assert code == 0
        assert "coverage: 33/49 (67%)" in out
        assert "missed (unmodeled-primitive)" in out

    def test_table1_full_names_filter(self, capsys):
        code = main(["table1", "Gin", "mkcert"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Gin" in out and "mkcert" in out


class TestDetectOnBenignPrograms:
    def test_empty_program(self):
        from repro.detector.gcatch import run_gcatch

        result = run_gcatch(build("func main() {\n}"))
        assert result.all_reports() == []

    def test_program_without_main(self):
        from repro.detector.bmoc import detect_bmoc

        result = detect_bmoc(
            build("func Lib(ch chan int) {\n\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}")
        )
        # the parameter channel has no creation site in the program: the
        # detector has nothing to anchor an analysis to
        assert result.stats.channels_analyzed == 0

    def test_channel_never_used(self):
        from repro.detector.bmoc import detect_bmoc

        result = detect_bmoc(build("func main() {\n\tch := make(chan int)\n\tprintln(0)\n\t_ = ch\n}"))
        assert result.reports == []
