"""Satellite property: parse→print→parse round-trip over the fuzz surface.

Locks in ``golang.parser``/``golang.printer`` as fuzz infrastructure: the
campaign minimizer and the regression-corpus workflow both re-render and
re-parse generated sources, so printing must be a fixpoint over every
template instance and over the full mutated/composed generator output.
"""

from __future__ import annotations

import pytest

from repro.corpus.templates import ALL_TEMPLATES
from repro.fuzz.generator import (
    MUTATIONS,
    apply_mutation,
    generate_program,
)
from repro.golang.parser import parse_file
from repro.golang.printer import print_file

ROUND_TRIP_SEED = 0
ROUND_TRIP_COUNT = 200


def normal_form(source: str, name: str = "rt.go") -> str:
    return print_file(parse_file(source, name))


def assert_fixpoint(source: str, context: str) -> None:
    once = normal_form(source)
    twice = normal_form(once)
    assert twice == once, f"printer not a fixpoint for {context}\n{source}"


@pytest.mark.parametrize("template", sorted(ALL_TEMPLATES))
def test_every_template_round_trips(template):
    source = "package main\n" + ALL_TEMPLATES[template]("T0").code
    assert_fixpoint(source, f"template {template}")


@pytest.mark.parametrize("template", sorted(ALL_TEMPLATES))
@pytest.mark.parametrize("op", MUTATIONS)
def test_every_mutated_template_round_trips(template, op):
    code = ALL_TEMPLATES[template]("T0").code
    mutated = apply_mutation(code, op, 2)
    assert_fixpoint("package main\n" + mutated, f"template {template} + {op}")


def test_200_generated_programs_round_trip():
    """The issue's 200-program property sweep, one seed, deterministic."""
    for index in range(ROUND_TRIP_COUNT):
        program = generate_program(ROUND_TRIP_SEED, index)
        assert_fixpoint(program.source, program.name)


def test_round_trip_preserves_parse_shape():
    """Printing must not change what the parser sees: re-parsing the
    printed form yields a file printing identically — and the printed
    form still contains every generated top-level function."""
    program = generate_program(ROUND_TRIP_SEED, 7)
    printed = normal_form(program.source, program.name)
    for spec in program.motifs:
        assert spec.uid in printed
    assert program.entry + "(" in printed
