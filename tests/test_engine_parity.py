"""Parity regression: the sharded engine must reproduce the serial detector.

Every case in the evaluation bug set is detected twice — ``jobs=1``
(serial path, no engine) and ``jobs=4`` (thread-pool engine) — and the
sorted report sets must be identical down to category, lines, blocked
operations, and solver outcome. This is the guarantee that makes ``--jobs``
a pure performance knob.
"""

from __future__ import annotations

import pytest

from repro.corpus.bugset import build_bug_set
from repro.detector.gcatch import run_gcatch
from repro.engine import ResultCache
from repro.ssa.builder import build_program

BUG_SET = build_bug_set()


def detect_keys(program, **kwargs):
    result = run_gcatch(program, **kwargs)
    return sorted(
        (
            r.category,
            tuple(r.lines),
            tuple(sorted((op.kind, op.prim_label, op.line) for op in r.blocked_ops)),
            r.solver_outcome,
        )
        for r in result.all_reports()
    )


@pytest.mark.parametrize("case", BUG_SET, ids=[c.case_id for c in BUG_SET])
def test_parallel_detection_matches_serial(case):
    program = build_program(case.source, case.case_id)
    serial = detect_keys(program)
    parallel = detect_keys(program, jobs=4)
    assert parallel == serial


@pytest.mark.parametrize(
    "case", BUG_SET[::7], ids=[c.case_id for c in BUG_SET[::7]]
)
def test_warm_cache_matches_serial(case):
    """A cache round-trip (cold store, warm load) must also preserve parity."""
    program = build_program(case.source, case.case_id)
    cache = ResultCache()
    serial = detect_keys(program)
    cold = detect_keys(program, jobs=2, cache=cache)
    warm = detect_keys(program, jobs=2, cache=cache)
    assert cold == serial
    assert warm == serial


def test_process_backend_parity_on_one_case():
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("no fork on this platform")
    case = max(BUG_SET, key=lambda c: len(c.source))
    program = build_program(case.source, case.case_id)
    assert detect_keys(program, jobs=2, backend="process") == detect_keys(program)


def span_shape(span):
    """Order-insensitive structural fingerprint of a span tree."""
    return (span.name, tuple(sorted(span_shape(c) for c in span.children)))


def test_fork_backend_span_tree_matches_serial_shape():
    """The ISSUE-7 lineage criterion: a jobs=4 fork-backend detect yields
    one rooted span tree, identical in shape to the serial engine's, with
    parent/trace lineage intact across the process boundary."""
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("no fork on this platform")

    from repro.engine import EngineConfig, run_engine
    from repro.obs import Collector, new_trace_id

    case = max(BUG_SET, key=lambda c: len(c.source))
    program = build_program(case.source, case.case_id)
    trace = new_trace_id()
    shapes = {}
    for label, config in (
        ("serial", EngineConfig(jobs=1)),
        ("fork", EngineConfig(jobs=4, backend="process")),
    ):
        collector = Collector("engine", trace_id=trace)
        run_engine(program, config=config, collector=collector)
        assert len(collector.spans) == 1, f"{label}: expected one rooted tree"
        root = collector.spans[0]
        for span in root.walk():
            assert span.trace_id == trace, f"{label}: {span.name} lost the trace"
            for child in span.children:
                assert child.parent_id == span.span_id
        shapes[label] = span_shape(root)
    assert shapes["fork"] == shapes["serial"]


def test_whole_bugset_counts_match():
    """Aggregate Table 1 counts are unchanged by sharding."""
    serial_total = 0
    engine_total = 0
    for case in BUG_SET:
        program = build_program(case.source, case.case_id)
        serial_total += len(run_gcatch(program).all_reports())
        engine_total += len(run_gcatch(program, jobs=4).all_reports())
    assert engine_total == serial_total
    assert serial_total > 0
