"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.corpus.snippets import FIGURE1

BUGGY = FIGURE1.source

CLEAN = """package main

func main() {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	println(<-ch)
}
"""


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "buggy.go"
    path.write_text(BUGGY)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.go"
    path.write_text(CLEAN)
    return str(path)


class TestDetectCommand:
    def test_reports_bug(self, buggy_file, capsys):
        code = main(["detect", buggy_file])
        out = capsys.readouterr().out
        assert code == 1
        assert "bmoc-chan" in out
        assert "outDone" in out

    def test_clean_program(self, clean_file, capsys):
        code = main(["detect", clean_file])
        assert code == 0
        assert "no bugs detected" in capsys.readouterr().out

    def test_whole_program_mode(self, buggy_file, capsys):
        code = main(["detect", "--no-disentangle", buggy_file])
        assert code == 1


class TestFixCommand:
    def test_prints_diff(self, buggy_file, capsys):
        code = main(["fix", buggy_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "strategy: buffer" in out
        assert "make(chan int, 1)" in out

    def test_write_applies_patch(self, buggy_file, capsys):
        main(["fix", "--write", buggy_file])
        patched = open(buggy_file).read()
        assert "make(chan int, 1)" in patched
        # the patched file is clean
        code = main(["detect", buggy_file])
        assert code == 0

    def test_nothing_to_fix(self, clean_file, capsys):
        code = main(["fix", clean_file])
        assert code == 0
        assert "no channel-only BMOC bugs" in capsys.readouterr().out


class TestRunCommand:
    def test_leak_reported(self, buggy_file, capsys):
        code = main(["run", buggy_file, "--seeds", "3"])
        out = capsys.readouterr().out
        assert code == 1
        assert "LEAKED" in out

    def test_clean_run(self, clean_file, capsys):
        code = main(["run", clean_file, "--seeds", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0/3 schedule(s) misbehaved" in out


class TestExploreCommand:
    def test_leaking_program_found_and_replayed(self, buggy_file, capsys):
        code = main(["explore", buggy_file, "--replay"])
        out = capsys.readouterr().out
        assert code == 1
        assert "LEAK" in out
        assert "reproduced" in out

    def test_clean_program_proven(self, clean_file, capsys):
        code = main(["explore", clean_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "complete" in out
        assert "0 leaking" in out


class TestDiffcheckCommand:
    def test_agreement_table(self, capsys):
        code = main(["diffcheck", "--max-runs", "64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "agree-bug" in out
        assert "unexplained disagreements: 0" in out


class TestNonblockingCommand:
    def test_detects_send_on_closed(self, tmp_path, capsys):
        path = tmp_path / "nb.go"
        path.write_text(
            "package main\nfunc main() {\n\tch := make(chan int, 1)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\tclose(ch)\n}\n"
        )
        code = main(["nonblocking", str(path)])
        assert code == 1
        assert "send-on-closed" in capsys.readouterr().out


class TestCorpusCommands:
    def test_table1_subset(self, capsys):
        code = main(["table1", "bbolt"])
        out = capsys.readouterr().out
        assert code == 0
        assert "bbolt" in out and "Total" in out
