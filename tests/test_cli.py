"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.corpus.snippets import FIGURE1

BUGGY = FIGURE1.source

CLEAN = """package main

func main() {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	println(<-ch)
}
"""


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "buggy.go"
    path.write_text(BUGGY)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.go"
    path.write_text(CLEAN)
    return str(path)


class TestDetectCommand:
    def test_reports_bug(self, buggy_file, capsys):
        code = main(["detect", buggy_file])
        out = capsys.readouterr().out
        assert code == 1
        assert "bmoc-chan" in out
        assert "outDone" in out

    def test_clean_program(self, clean_file, capsys):
        code = main(["detect", clean_file])
        assert code == 0
        assert "no bugs detected" in capsys.readouterr().out

    def test_whole_program_mode(self, buggy_file, capsys):
        code = main(["detect", "--no-disentangle", buggy_file])
        assert code == 1


class TestFixCommand:
    def test_prints_diff(self, buggy_file, capsys):
        code = main(["fix", buggy_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "strategy: buffer" in out
        assert "make(chan int, 1)" in out

    def test_write_applies_patch(self, buggy_file, capsys):
        main(["fix", "--write", buggy_file])
        patched = open(buggy_file).read()
        assert "make(chan int, 1)" in patched
        # the patched file is clean
        code = main(["detect", buggy_file])
        assert code == 0

    def test_nothing_to_fix(self, clean_file, capsys):
        code = main(["fix", clean_file])
        assert code == 0
        assert "no channel-only BMOC bugs" in capsys.readouterr().out


class TestRunCommand:
    def test_leak_reported(self, buggy_file, capsys):
        code = main(["run", buggy_file, "--seeds", "3"])
        out = capsys.readouterr().out
        assert code == 1
        assert "LEAKED" in out

    def test_clean_run(self, clean_file, capsys):
        code = main(["run", clean_file, "--seeds", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0/3 schedule(s) misbehaved" in out


class TestExploreCommand:
    def test_leaking_program_found_and_replayed(self, buggy_file, capsys):
        code = main(["explore", buggy_file, "--replay"])
        out = capsys.readouterr().out
        assert code == 1
        assert "LEAK" in out
        assert "reproduced" in out

    def test_clean_program_proven(self, clean_file, capsys):
        code = main(["explore", clean_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "complete" in out
        assert "0 leaking" in out


class TestDiffcheckCommand:
    def test_agreement_table(self, capsys):
        code = main(["diffcheck", "--max-runs", "64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "agree-bug" in out
        assert "unexplained disagreements: 0" in out


class TestNonblockingCommand:
    def test_detects_send_on_closed(self, tmp_path, capsys):
        path = tmp_path / "nb.go"
        path.write_text(
            "package main\nfunc main() {\n\tch := make(chan int, 1)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\tclose(ch)\n}\n"
        )
        code = main(["nonblocking", str(path)])
        assert code == 1
        assert "send-on-closed" in capsys.readouterr().out


class TestCorpusCommands:
    def test_table1_subset(self, capsys):
        code = main(["table1", "bbolt"])
        out = capsys.readouterr().out
        assert code == 0
        assert "bbolt" in out and "Total" in out


class TestObservabilityFlags:
    def test_detect_trace_appends_stage_table(self, buggy_file, capsys):
        code = main(["detect", "--trace", buggy_file])
        out = capsys.readouterr().out
        assert code == 1
        assert "Per-bug solver effort" in out
        for stage in ("parse", "ssa-build", "path-enum", "solve"):
            assert stage in out

    def test_fix_trace_shows_gfix_phases(self, buggy_file, capsys):
        code = main(["fix", "--trace", buggy_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "fix-preprocess" in out and "fix-transform" in out

    def test_explore_json(self, buggy_file, capsys):
        import json

        code = main(["explore", "--json", buggy_file])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["schema"] == "repro.obs/2"
        assert payload["kind"] == "exploration"
        assert payload["runs"] > 0 and payload["any_leak"]

    def test_diffcheck_json_with_case_subset(self, capsys):
        import json

        code = main(["diffcheck", "--json", "--cases", "Set00", "--max-runs", "32"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["kind"] == "diffcheck"
        assert [v["case_id"] for v in payload["verdicts"]] == ["Set00"]

    def test_diffcheck_unknown_case_prefix(self, capsys):
        code = main(["diffcheck", "--cases", "NoSuchCase"])
        assert code == 2
        assert "no corpus cases match" in capsys.readouterr().err


class TestStatsCommand:
    def test_full_pipeline_table(self, buggy_file, capsys):
        code = main(["stats", buggy_file, "--max-runs", "64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1/1 fixed" in out
        for stage in ("disentangle", "encode", "solve", "explore"):
            assert stage in out

    def test_json_schema(self, buggy_file, capsys):
        import json

        from repro.obs import PIPELINE_STAGES

        code = main(["stats", buggy_file, "--json", "--max-runs", "64"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["schema"] == "repro.obs/2"
        stage_names = {s["name"] for s in payload["stages"]}
        assert set(PIPELINE_STAGES) <= stage_names
        assert payload["reports"] >= 1 and payload["fixed"] == 1


class TestServeCommand:
    def test_stdio_round_trip(self, buggy_file, monkeypatch, capsys):
        import io
        import json
        import sys as _sys

        monkeypatch.setattr(
            _sys,
            "stdin",
            io.StringIO('{"id": 1, "method": "ping"}\n{"id": 2, "method": "shutdown"}\n'),
        )
        code = main(["serve", buggy_file])
        captured = capsys.readouterr()
        assert code == 0
        assert "on stdio" in captured.err  # banner stays off the protocol channel
        lines = [json.loads(l) for l in captured.out.splitlines()]
        assert lines[0]["result"]["protocol"] == "repro.service/1"
        assert lines[1]["result"]["ok"] is True

    def test_unloadable_project_is_usage_error(self, tmp_path, capsys):
        code = main(["serve", str(tmp_path / "nope.go")])
        assert code == 2
        assert "cannot load project" in capsys.readouterr().err


class TestWatchCommand:
    def test_initial_detect_sets_exit_code(self, buggy_file, clean_file, capsys):
        assert main(["watch", buggy_file, "--cycles", "0"]) == 1
        assert "watching" in capsys.readouterr().out
        assert main(["watch", clean_file, "--cycles", "0"]) == 0


class TestClientCommand:
    @pytest.fixture
    def server(self, buggy_file):
        import threading

        from repro.service import AnalysisService, serve_tcp

        service = AnalysisService(buggy_file).start()
        server = serve_tcp(service)
        thread = threading.Thread(target=server.serve_until_shutdown, daemon=True)
        thread.start()
        yield server.address
        server.begin_shutdown()
        service.stop()
        thread.join(timeout=10)

    def test_detect_exits_like_one_shot(self, server, buggy_file, capsys):
        import json

        host, port = server
        code = main(["client", "detect", "--port", str(port)])
        response = json.loads(capsys.readouterr().out)
        assert code == 1 == response["result"]["code"]
        assert code == main(["detect", buggy_file])

    def test_health_and_bad_method_codes(self, server, capsys):
        host, port = server
        assert main(["client", "health", "--port", str(port)]) == 0
        assert main(["client", "nonsense", "--port", str(port)]) == 2

    def test_bad_params_is_usage_error(self, server, capsys):
        host, port = server
        assert main(["client", "ping", "--port", str(port), "--params", "not json"]) == 2
        assert main(["client", "ping", "--port", str(port), "--params", "[1]"]) == 2

    def test_connection_refused_is_usage_error(self, capsys):
        # bind-then-close guarantees a dead port
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["client", "ping", "--port", str(port)]) == 2


class TestExitCodeRegression:
    """Satellite: ``python -m repro`` propagates the daemon/client exit
    codes exactly like one-shot detect — asserted on real subprocesses."""

    @staticmethod
    def _run(argv, **kwargs):
        import os
        import subprocess
        import sys as _sys

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [_sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
            **kwargs,
        )

    def test_daemon_client_codes_match_one_shot(self, buggy_file, clean_file):
        import subprocess
        import sys as _sys
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        daemon = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve", buggy_file, "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = daemon.stdout.readline()
            assert "repro-serve listening on" in banner
            port = banner.strip().rsplit(":", 1)[1]
            one_shot = self._run(["detect", buggy_file])
            via_client = self._run(["client", "detect", "--port", port])
            assert via_client.returncode == one_shot.returncode == 1
            assert self._run(["client", "health", "--port", port]).returncode == 0
            assert self._run(["client", "shutdown", "--port", port]).returncode == 0
            assert daemon.wait(timeout=60) == 0
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

    def test_clean_project_exits_zero_everywhere(self, clean_file):
        assert self._run(["detect", clean_file]).returncode == 0
        assert self._run(["watch", clean_file, "--cycles", "0"]).returncode == 0


class TestTelemetryCommands:
    def test_stats_prom_emits_valid_exposition(self, buggy_file, capsys):
        from repro.obs import validate_exposition

        code = main(["stats", buggy_file, "--prom", "--max-runs", "32"])
        out = capsys.readouterr().out
        assert code == 0
        assert validate_exposition(out) == []
        assert "repro_stage_seconds_total" in out
        assert "repro_solver_calls_total" in out

    def test_detect_trace_out_writes_otlp_json(self, buggy_file, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        code = main(["detect", buggy_file, "--trace-out", str(trace_path)])
        assert code == 1  # the bug is still reported
        payload = json.loads(trace_path.read_text())
        spans = payload["resourceSpans"][0]["scopeSpans"][0]["spans"]
        names = {s["name"] for s in spans}
        assert "gcatch" in names and "solve" in names
        by_id = {s["spanId"]: s for s in spans}
        children = [s for s in spans if s["parentSpanId"]]
        assert children and all(s["parentSpanId"] in by_id for s in children)

    def test_stats_trace_out(self, buggy_file, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        code = main(["stats", buggy_file, "--max-runs", "32",
                     "--trace-out", str(trace_path)])
        assert code == 0
        assert json.loads(trace_path.read_text())["resourceSpans"]

    def test_top_renders_from_a_journal(self, tmp_path, capsys):
        import json as jsonlib

        from repro.obs import TelemetryJournal, request_record

        path = str(tmp_path / "telemetry.jsonl")
        journal = TelemetryJournal(path)
        for i in range(10):
            journal.append(request_record(
                trace_id=f"trace{i}", method="detect", outcome="ok",
                elapsed_seconds=0.05,
            ))
        code = main(["top", "--journal", path])
        out = capsys.readouterr().out
        assert code == 0
        assert "requests" in out and "latency p50/p95/p99" in out
        code = main(["top", "--journal", path, "--json", "--last", "5"])
        payload = jsonlib.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["requests"] == 5
        assert payload["latency"]["p50"] == 0.05

    def test_top_without_journal_is_a_usage_error(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_JOURNAL", raising=False)
        assert main(["top"]) == 2
        assert "no journal" in capsys.readouterr().err
        missing = str(tmp_path / "nope.jsonl")
        assert main(["top", "--journal", missing]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_fuzz_json_carries_telemetry_block(self, capsys):
        import json

        code = main(["fuzz", "--count", "4", "--budget", "16", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code in (0, 1)
        stats = payload["stats"]
        assert stats["schema"] == "repro.obs/2"
        assert stats["counters"]["fuzz.programs"] == 4
        assert sum(
            v for k, v in stats["counters"].items() if k.startswith("fuzz.bucket.")
        ) == 4
        wall = stats["distributions"]["fuzz.program.seconds"]
        assert wall["count"] == 4 and wall["p50"] is not None
