"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.ssa.builder import build_program


def build(source: str, filename: str = "test.go"):
    """Parse + lower a MiniGo snippet (adds the package clause)."""
    if not source.lstrip().startswith("package"):
        source = "package main\n" + source
    return build_program(source, filename)


@pytest.fixture
def figure1_source() -> str:
    from repro.corpus.snippets import FIGURE1

    return FIGURE1.source


@pytest.fixture
def figure3_source() -> str:
    from repro.corpus.snippets import FIGURE3

    return FIGURE3.source


@pytest.fixture
def figure4_source() -> str:
    from repro.corpus.snippets import FIGURE4

    return FIGURE4.source
