"""Tests for choice-trace recording and deterministic replay."""

import pytest

from repro.runtime.choices import Choice, ReplayDivergence
from repro.runtime.explorer import ReplayScheduler, explore, outcome_signature
from repro.runtime.scheduler import replay_trace, run_program
from repro.ssa.builder import build_program

RACY = """package main

func main() {
	x := 0
	done := make(chan int, 1)
	go func() {
		x = 1
		done <- 1
	}()
	y := x
	<-done
	println(y)
}
"""

LEAKY = """package main

func worker(ch chan int) {
	ch <- 1
}

func main() {
	ch := make(chan int)
	go worker(ch)
	println("done")
}
"""


class TestTraceRecording:
    def test_every_run_records_its_choices(self):
        program = build_program(RACY, "racy.go")
        outcome = run_program(program, seed=3)
        assert outcome.choice_trace
        assert all(isinstance(c, Choice) for c in outcome.choice_trace)
        assert all(0 <= c.index < c.options for c in outcome.choice_trace)

    def test_different_seeds_record_different_traces(self):
        program = build_program(RACY, "racy.go")
        traces = {tuple(run_program(program, seed=s).choice_trace) for s in range(10)}
        assert len(traces) > 1


class TestReplayFidelity:
    def test_replay_reproduces_identical_result(self):
        program = build_program(RACY, "racy.go")
        original = run_program(program, seed=5)
        replayed = replay_trace(program, original.choice_trace, seed=5)
        assert replayed == original  # field-for-field, trace included

    def test_leak_replays_from_trace(self):
        program = build_program(LEAKY, "leaky.go")
        leak = next(
            run_program(program, seed=s) for s in range(50) if run_program(program, seed=s).leaked
        )
        replayed = replay_trace(program, leak.choice_trace, seed=leak.seed)
        assert replayed.leaked == leak.leaked
        assert replayed == leak

    def test_explored_leak_replays(self):
        program = build_program(LEAKY, "leaky.go")
        exploration = explore(program)
        leak = exploration.leaking()[0]
        scheduler = ReplayScheduler(program, leak.choice_trace)
        assert scheduler.reproduces(leak)

    def test_replay_scheduler_run_matches_signature(self):
        program = build_program(RACY, "racy.go")
        outcome = run_program(program, seed=7)
        replayed = ReplayScheduler(program, outcome.choice_trace, seed=7).run()
        assert outcome_signature(replayed) == outcome_signature(outcome)


class TestReplayValidation:
    def test_truncated_trace_diverges(self):
        program = build_program(RACY, "racy.go")
        outcome = run_program(program, seed=1)
        with pytest.raises(ReplayDivergence):
            replay_trace(program, outcome.choice_trace[:2], seed=1)

    def test_wrong_option_count_diverges(self):
        program = build_program(RACY, "racy.go")
        outcome = run_program(program, seed=1)
        bad = [Choice(c.kind, c.options + 5, c.index) for c in outcome.choice_trace]
        with pytest.raises(ReplayDivergence):
            replay_trace(program, bad, seed=1)
