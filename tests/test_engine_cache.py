"""Cache-invalidation matrix for the engine's content-addressed result cache.

The fingerprint of a BMOC shard covers exactly the functions reachable in
that primitive's Pset scope, so:

* editing code inside one primitive's scope re-analyzes that primitive and
  nothing else;
* editing a function with no primitives keeps every BMOC shard warm;
* bumping the encoder (or solver/engine) version invalidates everything.

Edits below are in-place and line-count-preserving on purpose: fingerprints
are deliberately line-sensitive (reports carry line numbers), so a valid
"unrelated" edit must not shift any other function's lines.
"""

from __future__ import annotations

from repro.constraints import encoding
from repro.detector.gcatch import run_gcatch
from repro.engine import ResultCache
from repro.engine.fingerprint import ProgramDigests, function_digest
from repro.obs import Collector
from tests.conftest import build

BASE = """
func alpha() {
	a := make(chan int)
	go func() {
		a <- 1
	}()
	println("alpha never receives")
}

func beta() {
	b := make(chan int)
	go func() {
		b <- 2
	}()
	<-b
}

func gamma() {
	println("no primitives here")
}
"""

# same line count, edit confined to alpha's goroutine closure (channel a's scope)
EDIT_IN_ALPHA = BASE.replace("a <- 1", "a <- 9")

# same line count, edit confined to gamma (outside every primitive's scope)
EDIT_IN_GAMMA = BASE.replace(
    'println("no primitives here")', 'println("still no primitives")'
)


def bmoc_shards(result):
    """Per-channel shards only.

    Traditional-checker shards fingerprint the whole program by design (any
    edit invalidates them), so the scoped-invalidation claims are about the
    ``kind == "bmoc"`` shards.
    """
    return [s for s in result.shards if s.kind == "bmoc"]


def run(source, cache, collector=None):
    return run_gcatch(build(source), jobs=1, cache=cache, collector=collector)


class TestScopedInvalidation:
    def test_warm_identical_source_hits_every_bmoc_shard(self):
        cache = ResultCache()
        run(BASE, cache)
        warm = run(BASE, cache)
        assert all(s.outcome == "cached" for s in bmoc_shards(warm))

    def test_in_scope_edit_invalidates_exactly_that_primitive(self):
        cache = ResultCache()
        cold = run(BASE, cache)
        assert len(bmoc_shards(cold)) == 2  # channels a and b
        edited = run(EDIT_IN_ALPHA, cache)
        by_label = {s.label: s.outcome for s in bmoc_shards(edited)}
        stale = [label for label, outcome in by_label.items() if outcome != "cached"]
        assert len(stale) == 1
        assert "alpha" in stale[0]  # only channel a's shard re-ran
        fresh = [label for label, outcome in by_label.items() if outcome == "cached"]
        assert len(fresh) == 1 and "beta" in fresh[0]

    def test_unrelated_edit_is_a_full_bmoc_cache_hit(self):
        cache = ResultCache()
        run(BASE, cache)
        collector = Collector("unrelated-edit")
        edited = run(EDIT_IN_GAMMA, cache, collector)
        shards = bmoc_shards(edited)
        assert all(s.outcome == "cached" for s in shards)
        assert collector.counters["cache.hit"] >= len(shards)
        # no solver work happened for the channels
        assert collector.counters.get("solver.calls", 0) == 0

    def test_reanalyzed_primitive_reports_reflect_the_edit(self):
        # sanity: the invalidated shard's fresh analysis is used, not stale
        cache = ResultCache()
        cold = run(BASE, cache)
        edited = run(EDIT_IN_ALPHA, cache)
        assert sorted(r.identity() for r in edited.all_reports()) == sorted(
            r.identity() for r in run_gcatch(build(EDIT_IN_ALPHA)).all_reports()
        )
        # still the same bug count as before the value tweak
        assert len(edited.all_reports()) == len(cold.all_reports())


class TestVersionInvalidation:
    def test_encoder_version_bump_invalidates_everything(self, monkeypatch):
        cache = ResultCache()
        run(BASE, cache)
        monkeypatch.setattr(encoding, "ENCODER_VERSION", "test-bump")
        collector = Collector("encoder-bump")
        rerun = run(BASE, cache, collector)
        assert all(s.outcome != "cached" for s in rerun.shards)
        assert collector.counters.get("cache.hit", 0) == 0
        assert collector.counters["cache.miss"] == len(rerun.shards)

    def test_solver_version_bump_invalidates_everything(self, monkeypatch):
        from repro.constraints import solver

        cache = ResultCache()
        run(BASE, cache)
        monkeypatch.setattr(solver, "SOLVER_VERSION", "test-bump")
        rerun = run(BASE, cache)
        assert all(s.outcome != "cached" for s in rerun.shards)

    def test_engine_version_bump_invalidates_everything(self, monkeypatch):
        from repro.engine import fingerprint

        cache = ResultCache()
        run(BASE, cache)
        monkeypatch.setattr(fingerprint, "ENGINE_VERSION", "test-bump")
        rerun = run(BASE, cache)
        assert all(s.outcome != "cached" for s in rerun.shards)


class TestOptionSensitivity:
    def test_analysis_options_key_the_cache(self):
        # disentangle on/off analyzes different scopes; entries must not collide
        cache = ResultCache()
        with_dis = run_gcatch(build(BASE), jobs=1, cache=cache, disentangle=True)
        without = run_gcatch(build(BASE), jobs=1, cache=cache, disentangle=False)
        assert all(s.outcome != "cached" for s in bmoc_shards(without))
        assert sorted(r.identity() for r in without.all_reports()) == sorted(
            r.identity() for r in run_gcatch(build(BASE), disentangle=False).all_reports()
        )
        assert with_dis is not without


class TestFingerprintPrimitives:
    def test_function_digest_stable_across_rebuilds(self):
        first = build(BASE)
        second = build(BASE)
        assert sorted(first.functions) == sorted(second.functions)
        for name in first.functions:
            assert function_digest(first.functions[name]) == function_digest(
                second.functions[name]
            )

    def test_function_digest_changes_on_body_edit(self):
        base = build(BASE)
        edited = build(EDIT_IN_ALPHA)
        changed = [
            name
            for name, fn in base.functions.items()
            if function_digest(fn) != function_digest(edited.functions[name])
        ]
        # only the closure carrying `a <- 1` differs
        assert len(changed) == 1 and changed[0].startswith("alpha")

    def test_program_digests_memoizes(self):
        program = build(BASE)
        digests = ProgramDigests(program)
        name = next(iter(program.functions))
        assert digests.of(name) == digests.of(name)
        assert digests.of(name) == function_digest(program.functions[name])


class TestDiskEviction:
    """The bounded disk tier: LRU-by-mtime eviction under entry/byte caps."""

    def _fill(self, cache, n=6):
        from repro.engine import CachedShard

        for i in range(n):
            cache.put(f"{i:02d}" + "a" * 62, CachedShard(reports=[]))

    def test_unbounded_by_default(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        self._fill(cache)
        assert cache.evicted == 0
        assert len(list(tmp_path.glob("objects/*/*.pkl"))) == 6

    def test_max_entries_evicts_oldest(self, tmp_path):
        import os
        import time

        cache = ResultCache(str(tmp_path), max_entries=3)
        from repro.engine import CachedShard

        keys = [f"{i:02d}" + "a" * 62 for i in range(5)]
        base = time.time() - 100
        for i, key in enumerate(keys):
            cache.put(key, CachedShard(reports=[]))
            # deterministic mtime order regardless of filesystem resolution
            target = tmp_path / "objects" / key[:2] / (key + ".pkl")
            os.utime(target, (base + i, base + i))
        # the store after the last put already evicted down to 3
        remaining = sorted(p.stem for p in tmp_path.glob("objects/*/*.pkl"))
        assert len(remaining) == 3
        assert cache.evicted == 2
        # the survivors are the most recently written keys
        assert remaining == sorted(keys[2:])

    def test_max_bytes_evicts_until_under_budget(self, tmp_path):
        from repro.engine import CachedShard

        probe = ResultCache(str(tmp_path))
        probe.put("ff" + "b" * 62, CachedShard(reports=[]))
        entry_size = next(tmp_path.glob("objects/*/*.pkl")).stat().st_size
        cache = ResultCache(str(tmp_path), max_bytes=entry_size * 3)
        self._fill(cache, n=6)
        total = sum(p.stat().st_size for p in tmp_path.glob("objects/*/*.pkl"))
        assert total <= entry_size * 3
        assert cache.evicted >= 3

    def test_disk_hit_refreshes_recency(self, tmp_path):
        import os
        import time

        from repro.engine import CachedShard

        cache = ResultCache(str(tmp_path), max_entries=2)
        old, young = "aa" + "c" * 62, "bb" + "c" * 62
        cache.put(old, CachedShard(reports=[]))
        cache.put(young, CachedShard(reports=[]))
        past = time.time() - 100
        for i, key in enumerate((old, young)):
            target = tmp_path / "objects" / key[:2] / (key + ".pkl")
            os.utime(target, (past + i, past + i))
        # touch `old` through a *disk* read (fresh instance: memory is cold)
        assert ResultCache(str(tmp_path)).get(old) is not None
        cache.put("cc" + "c" * 62, CachedShard(reports=[]))
        stems = {p.stem for p in tmp_path.glob("objects/*/*.pkl")}
        assert old in stems and young not in stems

    def test_never_evicts_the_entry_just_written(self, tmp_path):
        from repro.engine import CachedShard

        cache = ResultCache(str(tmp_path), max_entries=0)
        key = "dd" + "e" * 62
        cache.put(key, CachedShard(reports=[]))
        assert [p.stem for p in tmp_path.glob("objects/*/*.pkl")] == [key]

    def test_engine_counts_evictions(self, tmp_path):
        collector = Collector("evict")
        cache = ResultCache(str(tmp_path), max_entries=2)
        result = run(BASE, cache, collector=collector)
        if len(result.shards) > 2:
            assert collector.counters.get("cache.evict", 0) == cache.evicted > 0

    def test_cache_from_env_reads_bounds(self, tmp_path, monkeypatch):
        from repro.engine import cache_from_env

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "7")
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1048576")
        cache = cache_from_env()
        assert cache.max_entries == 7
        assert cache.max_bytes == 1048576
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "0")
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "junk")
        cache = cache_from_env()
        assert cache.max_entries is None
        assert cache.max_bytes is None
