"""Tests for the observability layer (``repro.obs``).

Covers span nesting and timing monotonicity, counter aggregation across
goroutine-spawning explorer runs, JSON schema round-tripping, and — the
acceptance criterion — a full ``Project.detect`` trace containing every
pipeline stage exactly once in the aggregated stage table.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.api import Project
from repro.corpus.snippets import FIGURE1
from repro.obs import (
    NULL,
    PIPELINE_STAGES,
    SCHEMA,
    Collector,
    Dist,
    NullCollector,
    Span,
    json_dumps,
    load,
    render_stats,
    snapshot,
)


# -- spans -------------------------------------------------------------------


def test_span_nesting_builds_a_tree():
    c = Collector()
    with c.span("outer"):
        with c.span("inner-a"):
            pass
        with c.span("inner-b"):
            with c.span("leaf"):
                pass
    assert len(c.spans) == 1
    outer = c.spans[0]
    assert outer.name == "outer"
    assert [child.name for child in outer.children] == ["inner-a", "inner-b"]
    assert [g.name for g in outer.children[1].children] == ["leaf"]
    assert [s.name for s in outer.walk()] == ["outer", "inner-a", "inner-b", "leaf"]


def test_span_timing_is_monotone():
    c = Collector()
    with c.span("outer"):
        with c.span("inner"):
            time.sleep(0.002)
    outer = c.spans[0]
    inner = outer.children[0]
    assert inner.seconds > 0
    # a parent encloses its children, so it can never be cheaper
    assert outer.seconds >= inner.seconds
    assert outer.end is not None and outer.end >= outer.start


def test_stage_totals_aggregate_repeated_entries():
    c = Collector()
    for _ in range(3):
        with c.span("solve"):
            pass
    totals = c.stage_totals()
    assert totals["solve"][0] == 3
    assert totals["solve"][1] >= 0.0


def test_leaked_inner_span_cannot_corrupt_the_stack():
    c = Collector()
    outer = c.span("outer")
    inner = c.span("inner")  # never closed explicitly
    outer.__exit__()
    assert [s.name for s in c.spans] == ["outer"]
    assert c._stack == []


# -- counters / gauges / distributions ---------------------------------------


def test_counters_accumulate_and_gauges_overwrite():
    c = Collector()
    c.count("x")
    c.count("x", 4)
    c.gauge("g", 1.0)
    c.gauge("g", 7.5)
    assert c.counters["x"] == 5
    assert c.gauges["g"] == 7.5


def test_distributions_track_count_mean_min_max():
    d = Dist()
    for v in (4, 2, 6):
        d.add(v)
    assert (d.count, d.total, d.min, d.max) == (3, 12, 2, 6)
    assert d.mean == 4


def test_merge_folds_counters_spans_and_dists():
    a, b = Collector("a"), Collector("b")
    a.count("n", 1)
    b.count("n", 2)
    b.observe("sz", 10)
    a.observe("sz", 2)
    with b.span("solve"):
        pass
    a.merge(b)
    assert a.counters["n"] == 3
    assert a.dists["sz"].count == 2
    assert a.dists["sz"].min == 2 and a.dists["sz"].max == 10
    assert "solve" in a.stage_totals()


# -- the no-op default -------------------------------------------------------


def test_null_collector_is_falsy_and_inert():
    assert not NULL
    assert isinstance(NULL, NullCollector)
    with NULL.span("anything"):
        pass
    NULL.count("x")
    NULL.gauge("g", 1)
    NULL.observe("d", 1)
    assert NULL.spans == [] and NULL.counters == {} and NULL.dists == {}
    # `collector or NULL` is the call-site normalization
    assert (None or NULL) is NULL
    real = Collector()
    assert (real or NULL) is real


def test_detect_without_collector_leaves_no_trace():
    project = Project.from_source(FIGURE1.source, "figure1.go")
    result = project.detect()
    assert result.trace is None
    assert project.collector is NULL


# -- JSON schema -------------------------------------------------------------


def test_snapshot_round_trips_through_json():
    c = Collector("roundtrip")
    with c.span("parse"):
        with c.span("ssa-build"):
            pass
    c.count("paths.enumerated", 12)
    c.gauge("g", 3.5)
    c.observe("pset.size", 4)
    c.observe("pset.size", 8)
    first = snapshot(c)
    assert first["schema"] == SCHEMA
    reloaded = load(json.loads(json_dumps(first)))
    assert snapshot(reloaded) == first


def test_load_rejects_unknown_schema():
    with pytest.raises(ValueError):
        load({"schema": "repro.obs/999"})


def test_snapshot_orders_pipeline_stages_first():
    c = Collector()
    with c.span("gcatch"):  # not a pipeline stage
        pass
    with c.span("solve"):
        pass
    with c.span("parse"):
        pass
    names = [s["name"] for s in snapshot(c)["stages"]]
    assert names == ["parse", "solve", "gcatch"]


# -- full-pipeline traces ----------------------------------------------------


def test_full_detect_trace_has_every_stage_exactly_once():
    collector = Collector("figure1")
    project = Project.from_source(FIGURE1.source, "figure1.go", collector=collector)
    result = project.detect()
    assert result.trace is collector
    stages = [s["name"] for s in snapshot(collector)["stages"] if s["name"] in PIPELINE_STAGES]
    assert stages == list(PIPELINE_STAGES)
    totals = collector.stage_totals()
    for stage in PIPELINE_STAGES:
        assert totals[stage][1] > 0.0, f"stage {stage} recorded no time"
    # the per-bug cost fields (Table 6 analogue) are populated
    report = result.bmoc.reports[0]
    assert report.clause_count > 0
    assert report.solver_nodes > 0
    assert report.solver_outcome == "sat"
    assert "solver effort" in report.render()


def test_explorer_aggregates_counters_across_goroutine_spawning_runs():
    collector = Collector()
    project = Project.from_source(FIGURE1.source, "figure1.go", collector=collector)
    exploration = project.explore(entry=FIGURE1.entry, max_runs=64)
    assert exploration.trace is collector
    assert collector.counters["explore.runs"] == exploration.runs
    # Figure 1's entry spawns a goroutine per run, so the interpreter-level
    # counter aggregates across every explorer-driven execution
    assert collector.counters["run.goroutines"] >= exploration.runs
    payload = exploration.to_json()
    assert payload["kind"] == "exploration"
    assert payload["stats"]["schema"] == SCHEMA


def test_fix_all_and_validate_report_into_the_same_collector():
    collector = Collector()
    project = Project.from_source(FIGURE1.source, "figure1.go", collector=collector)
    result = project.detect()
    summary = project.fix_all(result.bmoc.bmoc_channel_bugs())
    assert summary.trace is collector
    assert summary.fixed()
    assert collector.counters["fix.attempt.buffer"] >= 1
    totals = collector.stage_totals()
    assert "fix-preprocess" in totals and "fix-transform" in totals


def test_render_stats_mentions_every_recorded_stage():
    collector = Collector()
    project = Project.from_source(FIGURE1.source, "figure1.go", collector=collector)
    project.detect()
    text = render_stats(collector)
    for stage in PIPELINE_STAGES:
        assert stage in text


# -- lineage: span ids, adoption, trace propagation --------------------------


def test_spans_carry_unique_ids_and_parent_links():
    c = Collector(trace_id="t" * 32)
    with c.span("outer"):
        with c.span("inner"):
            pass
    outer = c.spans[0]
    inner = outer.children[0]
    assert outer.span_id and inner.span_id and outer.span_id != inner.span_id
    assert inner.parent_id == outer.span_id
    assert outer.trace_id == inner.trace_id == "t" * 32


def test_adopt_spans_reparents_under_the_open_span():
    sub = Collector("shard")
    with sub.span("engine-shard"):
        with sub.span("solve"):
            pass
    main = Collector("run", trace_id="abc123")
    with main.span("gcatch"):
        main.adopt_spans(sub.spans)
    gcatch = main.spans[0]
    shard = gcatch.children[0]
    assert shard.name == "engine-shard"
    assert shard.parent_id == gcatch.span_id
    # adoption re-roots the whole subtree onto the adopter's trace
    assert all(s.trace_id == "abc123" for s in gcatch.walk())


def test_merge_adopts_spans_with_lineage_not_flat():
    sub = Collector("worker")
    with sub.span("engine-shard"):
        pass
    main = Collector("run")
    with main.span("gcatch"):
        main.merge(sub)
    assert len(main.spans) == 1  # single rooted tree, not a flat sibling
    assert main.spans[0].children[0].name == "engine-shard"
    assert main.spans[0].children[0].parent_id == main.spans[0].span_id


def test_span_dict_round_trip_preserves_lineage_and_attrs():
    c = Collector(trace_id="feed")
    with c.span("outer", shard="leakOne:chan", kind="bmoc"):
        with c.span("inner"):
            pass
    restored = Span.from_dict(c.spans[0].to_dict())
    assert restored.span_id == c.spans[0].span_id
    assert restored.trace_id == "feed"
    assert restored.attrs["shard"] == "leakOne:chan"
    assert restored.children[0].parent_id == restored.span_id


# -- real distributions ------------------------------------------------------


def test_dist_percentiles_from_reservoir():
    d = Dist()
    for v in range(1, 101):  # 1..100
        d.add(float(v))
    assert d.p50 == pytest.approx(50, abs=2)
    assert d.p95 == pytest.approx(95, abs=2)
    assert d.p99 == pytest.approx(99, abs=2)


def test_dist_reservoir_is_bounded_and_deterministic():
    from repro.obs import RESERVOIR_SIZE

    a, b = Dist(), Dist()
    for v in range(10_000):
        a.add(float(v))
        b.add(float(v))
    assert len(a.samples) == RESERVOIR_SIZE
    # fixed-seed algorithm R: identical observation sequences keep the
    # identical sample (percentiles are reproducible byte-for-byte)
    assert a.samples == b.samples
    assert a.p99 is not None and a.p99 > a.p50


def test_dist_histogram_buckets_count_every_observation():
    from repro.obs import DEFAULT_BUCKET_BOUNDS

    d = Dist()
    values = [0.0005, 0.003, 0.07, 0.3, 2.0, 999.0]
    for v in values:
        d.add(v)
    assert sum(d.buckets) == len(values)
    assert len(d.buckets) == len(DEFAULT_BUCKET_BOUNDS) + 1
    assert d.buckets[-1] == 1  # the +Inf bucket caught 999.0


def test_dist_merge_adds_buckets_and_bounds_reservoir():
    from repro.obs import RESERVOIR_SIZE

    a, b = Dist(), Dist()
    for v in range(300):
        a.add(float(v))
    for v in range(300, 600):
        b.add(float(v))
    a.merge(b)
    assert a.count == 600
    assert sum(a.buckets) == 600
    assert len(a.samples) <= RESERVOIR_SIZE
    assert a.min == 0.0 and a.max == 599.0


# -- repro.obs/2 schema ------------------------------------------------------


def test_snapshot_v2_round_trips_histograms_and_lineage():
    c = Collector("roundtrip", trace_id="cafe" * 8)
    with c.span("gcatch"):
        with c.span("solve"):
            pass
    for v in (0.001, 0.5, 3.0):
        c.observe("lat", v)
    payload = json.loads(json_dumps(snapshot(c)))
    assert payload["schema"] == SCHEMA == "repro.obs/2"
    assert payload["trace_id"] == "cafe" * 8
    dist = payload["distributions"]["lat"]
    assert dist["p50"] is not None and sum(dist["buckets"]) == 3
    restored = load(payload)
    assert restored.trace_id == "cafe" * 8
    assert restored.dists["lat"].p95 == c.dists["lat"].p95
    assert restored.dists["lat"].buckets == c.dists["lat"].buckets
    again = snapshot(restored)
    assert again["distributions"] == payload["distributions"]
    assert again["spans"] == payload["spans"]


def test_load_accepts_v1_snapshots():
    """PR-2-era snapshots (means-only dists, anonymous spans) still load."""
    v1 = {
        "schema": "repro.obs/1",
        "name": "old-run",
        "stages": [{"name": "solve", "count": 2, "seconds": 0.5}],
        "counters": {"solver.calls": 2},
        "gauges": {},
        "distributions": {"sz": {"count": 2, "total": 12.0, "min": 2.0, "max": 10.0}},
        "spans": [
            {"name": "gcatch", "seconds": 0.6,
             "children": [{"name": "solve", "seconds": 0.5}]},
        ],
    }
    c = load(v1)
    assert c.counters["solver.calls"] == 2
    d = c.dists["sz"]
    assert (d.count, d.mean) == (2, 6.0)
    assert d.p50 is None  # /1 had no reservoir: percentiles honestly absent
    # anonymous spans get fresh ids and consistent child lineage
    root = c.spans[0]
    assert root.span_id
    assert root.children[0].parent_id == root.span_id
    assert snapshot(c)["schema"] == "repro.obs/2"


# -- Prometheus exposition ---------------------------------------------------


def test_render_prometheus_is_valid_line_by_line():
    from repro.obs import render_prometheus, validate_exposition

    c = Collector("prom")
    with c.span("gcatch"):
        with c.span("solve"):
            pass
    c.count("solver.calls", 3)
    c.gauge("service.queue-depth", 2)
    for v in (0.01, 0.2, 1.5):
        c.observe("service.request.seconds", v)
    text = render_prometheus(c)
    assert validate_exposition(text) == []
    assert text.endswith("\n")
    lines = text.splitlines()
    assert 'repro_stage_seconds_total{stage="gcatch"}' in text
    assert "repro_solver_calls_total 3" in lines
    assert "repro_service_queue_depth 2" in lines
    # the request-latency histogram with percentile gauges
    assert any(
        l.startswith('repro_service_request_seconds_bucket{le="0.025"}')
        for l in lines
    )
    assert "repro_service_request_seconds_count 3" in lines
    for q in ("p50", "p95", "p99"):
        assert any(l.startswith(f"repro_service_request_seconds_{q} ") for l in lines)


def test_validate_exposition_flags_garbage():
    from repro.obs import validate_exposition

    bad = validate_exposition("ok_metric 1\nnot a metric line!\n")
    assert bad == ["not a metric line!"]


# -- OTLP-ish trace export ---------------------------------------------------


def test_trace_to_otlp_flattens_with_lineage(tmp_path):
    from repro.obs import trace_to_otlp, write_trace

    c = Collector("svc", trace_id="beef" * 8)
    with c.span("service-request", method="detect"):
        with c.span("gcatch"):
            pass
    payload = trace_to_otlp(c)
    spans = payload["resourceSpans"][0]["scopeSpans"][0]["spans"]
    assert [s["name"] for s in spans] == ["service-request", "gcatch"]
    root, child = spans
    assert child["parentSpanId"] == root["spanId"]
    assert root["traceId"] == child["traceId"] == "beef" * 8
    assert root["endTimeUnixNano"] >= root["startTimeUnixNano"]
    assert {"key": "method", "value": {"stringValue": "detect"}} in root["attributes"]
    out = tmp_path / "trace.json"
    write_trace(c, str(out))
    assert json.loads(out.read_text()) == payload


# -- telemetry journal and `repro top` ---------------------------------------


def test_journal_appends_and_reads_records(tmp_path):
    from repro.obs import TelemetryJournal, request_record

    journal = TelemetryJournal(str(tmp_path / "telemetry.jsonl"))
    for i in range(5):
        journal.append(
            request_record(
                trace_id=f"t{i}", method="detect", outcome="ok",
                elapsed_seconds=0.1 * i,
            )
        )
    records = journal.read()
    assert [r["trace_id"] for r in records] == [f"t{i}" for i in range(5)]
    assert journal.read(last=2)[0]["trace_id"] == "t3"


def test_journal_rotates_at_max_bytes_and_bounds_files(tmp_path):
    from repro.obs import TelemetryJournal, request_record

    path = str(tmp_path / "j.jsonl")
    journal = TelemetryJournal(path, max_bytes=400, max_files=3)
    for i in range(50):
        journal.append(
            request_record(
                trace_id=f"trace-{i:04d}", method="detect", outcome="ok",
                elapsed_seconds=0.01,
            )
        )
    import os

    files = journal.files()
    assert 1 < len(files) <= 3
    assert all(os.path.getsize(f) <= 400 for f in files)
    # newest record survives; oldest rotated out
    records = journal.read()
    assert records[-1]["trace_id"] == "trace-0049"
    assert records[0]["trace_id"] != "trace-0000"


def test_journal_skips_corrupt_lines(tmp_path):
    from repro.obs import TelemetryJournal

    path = tmp_path / "j.jsonl"
    path.write_text('{"trace_id": "good", "elapsed_seconds": 0.1}\n{torn\n')
    journal = TelemetryJournal(str(path))
    assert [r["trace_id"] for r in journal.read()] == ["good"]


def test_summarize_and_render_top(tmp_path):
    from repro.obs import render_top, request_record, summarize

    records = []
    for i in range(20):
        records.append(
            request_record(
                trace_id=f"tr{i}", method="detect" if i % 2 else "stats",
                outcome="ok" if i != 7 else "crashed",
                elapsed_seconds=0.01 * (i + 1),
                queue_wait_seconds=0.001,
                cache={"hits": 3, "misses": 1},
                incidents=1 if i == 7 else 0,
            )
        )
        records[-1]["ts"] = 1000.0 + i  # deterministic window
    summary = summarize(records)
    assert summary["requests"] == 20
    assert summary["throughput_rps"] == pytest.approx(20 / 19)
    assert summary["error_rate"] == pytest.approx(1 / 20)
    assert summary["cache_hit_rate"] == pytest.approx(0.75)
    assert summary["latency"].p50 is not None
    assert summary["slowest"][0]["elapsed_seconds"] == pytest.approx(0.2)
    text = render_top(records)
    assert "latency p50/p95/p99" in text
    assert "cache hit rate" in text and "75%" in text
    assert "detect" in text and "stats" in text
    assert render_top([]).startswith("repro top: journal is empty")
