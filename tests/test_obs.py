"""Tests for the observability layer (``repro.obs``).

Covers span nesting and timing monotonicity, counter aggregation across
goroutine-spawning explorer runs, JSON schema round-tripping, and — the
acceptance criterion — a full ``Project.detect`` trace containing every
pipeline stage exactly once in the aggregated stage table.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.api import Project
from repro.corpus.snippets import FIGURE1
from repro.obs import (
    NULL,
    PIPELINE_STAGES,
    SCHEMA,
    Collector,
    Dist,
    NullCollector,
    Span,
    json_dumps,
    load,
    render_stats,
    snapshot,
)


# -- spans -------------------------------------------------------------------


def test_span_nesting_builds_a_tree():
    c = Collector()
    with c.span("outer"):
        with c.span("inner-a"):
            pass
        with c.span("inner-b"):
            with c.span("leaf"):
                pass
    assert len(c.spans) == 1
    outer = c.spans[0]
    assert outer.name == "outer"
    assert [child.name for child in outer.children] == ["inner-a", "inner-b"]
    assert [g.name for g in outer.children[1].children] == ["leaf"]
    assert [s.name for s in outer.walk()] == ["outer", "inner-a", "inner-b", "leaf"]


def test_span_timing_is_monotone():
    c = Collector()
    with c.span("outer"):
        with c.span("inner"):
            time.sleep(0.002)
    outer = c.spans[0]
    inner = outer.children[0]
    assert inner.seconds > 0
    # a parent encloses its children, so it can never be cheaper
    assert outer.seconds >= inner.seconds
    assert outer.end is not None and outer.end >= outer.start


def test_stage_totals_aggregate_repeated_entries():
    c = Collector()
    for _ in range(3):
        with c.span("solve"):
            pass
    totals = c.stage_totals()
    assert totals["solve"][0] == 3
    assert totals["solve"][1] >= 0.0


def test_leaked_inner_span_cannot_corrupt_the_stack():
    c = Collector()
    outer = c.span("outer")
    inner = c.span("inner")  # never closed explicitly
    outer.__exit__()
    assert [s.name for s in c.spans] == ["outer"]
    assert c._stack == []


# -- counters / gauges / distributions ---------------------------------------


def test_counters_accumulate_and_gauges_overwrite():
    c = Collector()
    c.count("x")
    c.count("x", 4)
    c.gauge("g", 1.0)
    c.gauge("g", 7.5)
    assert c.counters["x"] == 5
    assert c.gauges["g"] == 7.5


def test_distributions_track_count_mean_min_max():
    d = Dist()
    for v in (4, 2, 6):
        d.add(v)
    assert (d.count, d.total, d.min, d.max) == (3, 12, 2, 6)
    assert d.mean == 4


def test_merge_folds_counters_spans_and_dists():
    a, b = Collector("a"), Collector("b")
    a.count("n", 1)
    b.count("n", 2)
    b.observe("sz", 10)
    a.observe("sz", 2)
    with b.span("solve"):
        pass
    a.merge(b)
    assert a.counters["n"] == 3
    assert a.dists["sz"].count == 2
    assert a.dists["sz"].min == 2 and a.dists["sz"].max == 10
    assert "solve" in a.stage_totals()


# -- the no-op default -------------------------------------------------------


def test_null_collector_is_falsy_and_inert():
    assert not NULL
    assert isinstance(NULL, NullCollector)
    with NULL.span("anything"):
        pass
    NULL.count("x")
    NULL.gauge("g", 1)
    NULL.observe("d", 1)
    assert NULL.spans == [] and NULL.counters == {} and NULL.dists == {}
    # `collector or NULL` is the call-site normalization
    assert (None or NULL) is NULL
    real = Collector()
    assert (real or NULL) is real


def test_detect_without_collector_leaves_no_trace():
    project = Project.from_source(FIGURE1.source, "figure1.go")
    result = project.detect()
    assert result.trace is None
    assert project.collector is NULL


# -- JSON schema -------------------------------------------------------------


def test_snapshot_round_trips_through_json():
    c = Collector("roundtrip")
    with c.span("parse"):
        with c.span("ssa-build"):
            pass
    c.count("paths.enumerated", 12)
    c.gauge("g", 3.5)
    c.observe("pset.size", 4)
    c.observe("pset.size", 8)
    first = snapshot(c)
    assert first["schema"] == SCHEMA
    reloaded = load(json.loads(json_dumps(first)))
    assert snapshot(reloaded) == first


def test_load_rejects_unknown_schema():
    with pytest.raises(ValueError):
        load({"schema": "repro.obs/999"})


def test_snapshot_orders_pipeline_stages_first():
    c = Collector()
    with c.span("gcatch"):  # not a pipeline stage
        pass
    with c.span("solve"):
        pass
    with c.span("parse"):
        pass
    names = [s["name"] for s in snapshot(c)["stages"]]
    assert names == ["parse", "solve", "gcatch"]


# -- full-pipeline traces ----------------------------------------------------


def test_full_detect_trace_has_every_stage_exactly_once():
    collector = Collector("figure1")
    project = Project.from_source(FIGURE1.source, "figure1.go", collector=collector)
    result = project.detect()
    assert result.trace is collector
    stages = [s["name"] for s in snapshot(collector)["stages"] if s["name"] in PIPELINE_STAGES]
    assert stages == list(PIPELINE_STAGES)
    totals = collector.stage_totals()
    for stage in PIPELINE_STAGES:
        assert totals[stage][1] > 0.0, f"stage {stage} recorded no time"
    # the per-bug cost fields (Table 6 analogue) are populated
    report = result.bmoc.reports[0]
    assert report.clause_count > 0
    assert report.solver_nodes > 0
    assert report.solver_outcome == "sat"
    assert "solver effort" in report.render()


def test_explorer_aggregates_counters_across_goroutine_spawning_runs():
    collector = Collector()
    project = Project.from_source(FIGURE1.source, "figure1.go", collector=collector)
    exploration = project.explore(entry=FIGURE1.entry, max_runs=64)
    assert exploration.trace is collector
    assert collector.counters["explore.runs"] == exploration.runs
    # Figure 1's entry spawns a goroutine per run, so the interpreter-level
    # counter aggregates across every explorer-driven execution
    assert collector.counters["run.goroutines"] >= exploration.runs
    payload = exploration.to_json()
    assert payload["kind"] == "exploration"
    assert payload["stats"]["schema"] == SCHEMA


def test_fix_all_and_validate_report_into_the_same_collector():
    collector = Collector()
    project = Project.from_source(FIGURE1.source, "figure1.go", collector=collector)
    result = project.detect()
    summary = project.fix_all(result.bmoc.bmoc_channel_bugs())
    assert summary.trace is collector
    assert summary.fixed()
    assert collector.counters["fix.attempt.buffer"] >= 1
    totals = collector.stage_totals()
    assert "fix-preprocess" in totals and "fix-transform" in totals


def test_render_stats_mentions_every_recorded_stage():
    collector = Collector()
    project = Project.from_source(FIGURE1.source, "figure1.go", collector=collector)
    project.detect()
    text = render_stats(collector)
    for stage in PIPELINE_STAGES:
        assert stage in text
