"""The generative MiniGo synthesizer: determinism, purity, mutations."""

from __future__ import annotations

import random

import pytest

from repro.corpus.templates import ALL_TEMPLATES
from repro.fuzz.generator import (
    INLINE,
    MUTATIONS,
    NESTED,
    SPAWN,
    MotifSpec,
    apply_mutation,
    generate_program,
    realize,
    render,
)
from repro.golang.parser import parse_file
from repro.ssa.builder import build_program


class TestDeterminism:
    def test_same_seed_same_program(self):
        for index in (0, 3, 17, 99):
            a = generate_program(5, index)
            b = generate_program(5, index)
            assert a == b
            assert a.source == b.source

    def test_distinct_indices_distinct_programs(self):
        sources = {generate_program(0, i).source for i in range(40)}
        assert len(sources) > 30  # collisions allowed but must be rare

    def test_seed_changes_the_population(self):
        a = [generate_program(0, i).source for i in range(20)]
        b = [generate_program(1, i).source for i in range(20)]
        assert a != b

    def test_independent_of_global_random_state(self):
        random.seed(1234)
        a = generate_program(7, 7)
        random.seed(9999)
        b = generate_program(7, 7)
        assert a == b


class TestRenderPurity:
    def test_realize_reproduces_generate(self):
        program = generate_program(2, 11)
        again = realize(program.campaign_seed, program.index, program.motifs)
        assert again.source == program.source
        assert again.entry == program.entry

    def test_subset_recipes_render_and_parse(self):
        program = generate_program(3, 153)  # a 4-motif recipe from the hunt
        assert len(program.motifs) > 1
        for i in range(len(program.motifs)):
            subset = program.motifs[:i] + program.motifs[i + 1 :]
            candidate = realize(program.campaign_seed, program.index, subset)
            parse_file(candidate.source, candidate.name + ".go")

    def test_uids_stay_stable_across_shrinking(self):
        program = generate_program(3, 153)
        subset = realize(program.campaign_seed, program.index, program.motifs[1:])
        assert [s.uid for s in subset.motifs] == [s.uid for s in program.motifs[1:]]


class TestMutations:
    def test_buffer_grow(self):
        code = "ch := make(chan int)\n"
        assert apply_mutation(code, "buffer-grow", 2) == "ch := make(chan int, 2)\n"

    def test_buffer_grow_struct_channel(self):
        code = "q := make(chan struct{})\n"
        assert apply_mutation(code, "buffer-grow", 1) == "q := make(chan struct{}, 1)\n"

    def test_buffer_grow_skips_buffered(self):
        code = "ch := make(chan int, 3)\n"
        assert apply_mutation(code, "buffer-grow", 2) == code

    def test_buffer_shrink(self):
        code = "ch := make(chan int, 3)\n"
        assert apply_mutation(code, "buffer-shrink", 1) == "ch := make(chan int)\n"

    def test_loop_bound(self):
        code = "\tfor i := 0; i < 8; i++ {\n"
        assert "< 3" in apply_mutation(code, "loop-bound", 2)

    def test_drop_close(self):
        code = "\tdoWork()\n\tclose(ch)\n\tmore()\n"
        assert apply_mutation(code, "drop-close", 1) == "\tdoWork()\n\tmore()\n"

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            apply_mutation("x", "no-such-op", 1)

    def test_every_op_keeps_templates_parseable(self):
        for name, factory in ALL_TEMPLATES.items():
            for op in MUTATIONS:
                mutated = apply_mutation(factory("T0").code, op, 2)
                parse_file("package main\n" + mutated, f"{name}-{op}.go")


class TestHarness:
    def test_every_generated_program_builds(self):
        for index in range(50):
            program = generate_program(0, index)
            build_program(program.source, program.name + ".go")

    def test_test_driver_gets_testing_t(self):
        spec = MotifSpec(template="fatal_real", uid="M0", placement=INLINE)
        program = render(0, 0, [spec])
        assert "func fuzzEntry(t *testing.T)" in program.source
        assert "TestProbeM0(t)" in program.source

    def test_plain_driver_entry_has_no_params(self):
        spec = MotifSpec(template="benign_rendezvous", uid="M0", placement=INLINE)
        program = render(0, 0, [spec])
        assert "func fuzzEntry()" in program.source

    def test_spawn_placement_joins(self):
        spec = MotifSpec(template="benign_rendezvous", uid="M0", placement=SPAWN)
        program = render(0, 0, [spec])
        assert "fzDoneM0 := make(chan int, 1)" in program.source
        assert "<-fzDoneM0" in program.source

    def test_nested_placement_wraps_in_conditional(self):
        spec = MotifSpec(template="benign_rendezvous", uid="M0", placement=NESTED)
        program = render(0, 0, [spec])
        assert "func fzNestM0(on bool)" in program.source

    def test_int_params_synthesized(self):
        # benign_compute's driver takes (v int, k int)
        spec = MotifSpec(template="benign_compute", uid="M0", placement=INLINE)
        program = render(0, 0, [spec])
        assert "scaleM0(0, 0)" in program.source

    def test_population_mixes_all_placements_and_mutations(self):
        placements = set()
        ops = set()
        for index in range(300):
            program = generate_program(0, index)
            for spec in program.motifs:
                placements.add(spec.placement)
                ops.update(spec.mutations)
        assert placements == {INLINE, SPAWN, NESTED}
        assert ops == set(MUTATIONS)
