"""Tests for the public API facade and the report/table helpers."""

import pytest

from repro import (
    Project,
    build_program,
    detect_and_fix,
    detect_bmoc,
    explore_schedules,
    run_gcatch,
    run_program,
)
from repro.detector.reporting import BlockedOp, BugReport, dedup_reports
from repro.detector.suspicious import enumerate_groups
from repro.report.table import cell, plain, render_simple, render_table


class TestPublicApi:
    SOURCE = (
        "package main\n\nfunc main() {\n\tch := make(chan int)\n"
        "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}\n"
    )

    def test_exports_work_together(self):
        project = Project.from_source(self.SOURCE, "x.go")
        result = project.detect()
        assert len(result.bmoc.reports) == 1
        fix = project.fix(result.bmoc.reports[0])
        assert fix.fixed

    def test_from_file(self, tmp_path):
        path = tmp_path / "prog.go"
        path.write_text(self.SOURCE)
        project = Project.from_file(str(path))
        assert project.filename.endswith("prog.go")
        assert "main" in project.program.functions

    def test_run_and_stress(self):
        project = Project.from_source(self.SOURCE)
        outcome = project.run(seed=1)
        assert outcome.output == ["0"]
        runs = project.stress(seeds=5)
        assert len(runs) == 5

    def test_apply_fix_requires_patch(self):
        project = Project.from_source(self.SOURCE)
        result = project.detect()
        fix = project.fix(result.bmoc.reports[0])
        fix.patch = None
        with pytest.raises(ValueError):
            project.apply_fix(fix)

    def test_detect_and_fix_one_shot(self):
        summary = detect_and_fix(self.SOURCE)
        assert len(summary.results) == 1
        assert summary.fixed()

    def test_module_level_functions(self):
        program = build_program(self.SOURCE, "x.go")
        assert detect_bmoc(program).reports
        assert run_gcatch(program).bmoc.reports
        assert run_program(program, seed=0).output == ["0"]
        assert len(explore_schedules(program, seeds=3)) == 3


class TestReporting:
    def _report(self, line: int, category: str = "bmoc-chan") -> BugReport:
        return BugReport(
            category=category,
            primitive=None,
            blocked_ops=[BlockedOp(kind="send", line=line, function="f", prim_label="ch")],
            description="test",
        )

    def test_dedup_by_identity(self):
        reports = [self._report(3), self._report(3), self._report(4)]
        assert len(dedup_reports(reports)) == 2

    def test_categories_distinguish(self):
        reports = [self._report(3, "bmoc-chan"), self._report(3, "bmoc-mutex")]
        assert len(dedup_reports(reports)) == 2

    def test_lines_sorted_unique(self):
        report = self._report(9)
        report.extra_lines = [2, 9]
        assert report.lines == [2, 9]

    def test_render_contains_category(self):
        assert "[bmoc-chan]" in self._report(1).render()


class TestTables:
    def test_cell_formatting(self):
        assert cell(0, 0) == "-"
        assert cell(3, 1) == "3(1)"
        assert plain(0) == "-"
        assert plain(7) == "7"

    def test_render_table_alignment(self):
        rows = [{"app": "X", "bmoc_c": "1(0)", "total": "1(0)", "s1": "1"}]
        text = render_table(rows, title="T")
        lines = text.split("\n")
        assert lines[0] == "T"
        assert "App Name" in lines[1]
        assert "X" in lines[3]

    def test_render_simple(self):
        text = render_simple(["a", "b"], [["1", "2"], ["3", "4"]], title="S")
        assert text.startswith("S\n")
        assert "3" in text


class TestSuspiciousGroups:
    def test_groups_exclude_matching_pairs(self):
        from tests.conftest import build
        from repro.analysis.alias import run_alias_analysis
        from repro.analysis.callgraph import build_call_graph
        from repro.analysis.dependency import build_dependency_graph, compute_pset
        from repro.analysis.primitives import find_primitives
        from repro.analysis.scope import compute_all_scopes
        from repro.detector.paths import PathEnumerator, enumerate_combinations

        program = build(
            "func f() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\t<-ch\n}"
        )
        cg = build_call_graph(program)
        alias = run_alias_analysis(program, cg)
        pmap = find_primitives(program, cg, alias)
        scopes = compute_all_scopes(pmap, cg)
        deps = build_dependency_graph(program, cg, pmap)
        chan = [p for p in pmap if p.site.kind == "chan"][0]
        pset = compute_pset(chan, deps, scopes)
        enumerator = PathEnumerator(program, cg, alias, pmap, pset, scopes[chan].functions)
        combos = enumerate_combinations(enumerator, scopes[chan].lca)
        for combo in combos:
            for group in enumerate_groups(combo):
                kinds = set()
                for stop in group:
                    event = stop.event
                    kinds.add((event.kind, id(event.prim)))
                # a send+recv pair on the same channel never forms a group
                assert not (
                    ("send", id(chan)) in kinds and ("recv", id(chan)) in kinds
                )
