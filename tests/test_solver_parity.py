"""Solver-mode parity: batched sessions must reproduce classic solving.

``--solver-mode batched`` routes every (combination, suspicious group)
decision through one :class:`repro.constraints.session.SolverSession`
per primitive — interned structures, a verdict memo, push/pop group
scopes — while ``classic`` encodes and solves each group from scratch.
The guarantee that makes the session a pure performance knob: **byte
identical** reports. Every case in the evaluation bug set is detected
under both modes and compared down to the rendered report text, the
solver outcomes, the cost table, and the detection statistics — on the
serial path, under the jobs=4 thread engine, and under the fork-based
process engine.
"""

from __future__ import annotations

import pytest

from repro.corpus.bugset import build_bug_set
from repro.detector.gcatch import run_gcatch
from repro.obs import Collector
from repro.report.table import render_bug_costs
from repro.ssa.builder import build_program

BUG_SET = build_bug_set()


def detect_fingerprint(program, solver_mode, **kwargs):
    """Everything a solver-mode switch could plausibly perturb."""
    result = run_gcatch(program, solver_mode=solver_mode, **kwargs)
    reports = sorted(result.all_reports(), key=lambda r: r.render())
    stats = result.bmoc.stats
    return {
        "renders": [r.render() for r in reports],
        "outcomes": [r.solver_outcome for r in reports],
        "costs": render_bug_costs(reports),
        "stats": (
            stats.channels_analyzed,
            stats.combinations,
            stats.groups_checked,
            stats.solver_calls,
            stats.sat_results,
            stats.solver_timeouts,
        ),
    }


@pytest.mark.parametrize("case", BUG_SET, ids=[c.case_id for c in BUG_SET])
def test_batched_matches_classic_serial(case):
    program = build_program(case.source, case.case_id)
    classic = detect_fingerprint(program, "classic")
    batched = detect_fingerprint(program, "batched")
    assert batched == classic


@pytest.mark.parametrize("case", BUG_SET, ids=[c.case_id for c in BUG_SET])
def test_batched_matches_classic_sharded(case):
    """jobs=4 through the thread engine: one session per shard, same bytes."""
    program = build_program(case.source, case.case_id)
    classic = detect_fingerprint(program, "classic", jobs=4)
    batched = detect_fingerprint(program, "batched", jobs=4)
    assert batched == classic


def test_process_backend_parity_on_widest_case():
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("no fork on this platform")
    case = max(BUG_SET, key=lambda c: len(c.source))
    program = build_program(case.source, case.case_id)
    classic = detect_fingerprint(program, "classic", jobs=2, backend="process")
    batched = detect_fingerprint(program, "batched", jobs=2, backend="process")
    assert batched == classic


def test_modes_agree_on_whole_bugset_counts():
    """Aggregate Table 1 counts are unchanged by the session."""
    classic_total = 0
    batched_total = 0
    for case in BUG_SET:
        program = build_program(case.source, case.case_id)
        classic_total += len(
            run_gcatch(program, solver_mode="classic").all_reports()
        )
        batched_total += len(
            run_gcatch(program, solver_mode="batched").all_reports()
        )
    assert batched_total == classic_total
    assert classic_total > 0


def test_session_actually_engages():
    """The batched run must exercise the session machinery, not bypass it:
    across the bug set the interner and the verdict memo both fire, and the
    batched-solve histogram records wall time."""
    collector = Collector("solver-parity")
    for case in BUG_SET:
        program = build_program(case.source, case.case_id)
        run_gcatch(program, collector=collector, solver_mode="batched")
    assert collector.counters.get("solver.intern.hit", 0) > 0
    assert collector.counters.get("solver.session.reuse", 0) > 0
    assert "solver.batched.seconds" in collector.dists


def test_classic_never_touches_session_counters():
    collector = Collector("solver-parity-classic")
    for case in BUG_SET[::5]:
        program = build_program(case.source, case.case_id)
        run_gcatch(program, collector=collector, solver_mode="classic")
    assert "solver.session.reuse" not in collector.counters
    assert "solver.intern.hit" not in collector.counters
