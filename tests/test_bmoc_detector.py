"""Tests for the BMOC detector (Algorithm 1 end-to-end)."""

from repro.detector.bmoc import detect_bmoc
from repro.runtime.scheduler import explore_schedules
from tests.conftest import build


def detect(source: str):
    return detect_bmoc(build(source))


class TestDetection:
    def test_figure1_bug_found_with_correct_root_cause(self, figure1_source):
        result = detect_bmoc(build(figure1_source, "docker.go"))
        assert len(result.reports) == 1
        report = result.reports[0]
        assert report.category == "bmoc-chan"
        blocked = report.blocked_ops[0]
        assert blocked.kind == "send"
        assert blocked.prim_label == "outDone"
        assert report.witness is not None

    def test_figure1_patched_is_clean(self, figure1_source):
        patched = figure1_source.replace("make(chan int)", "make(chan int, 1)")
        result = detect_bmoc(build(patched))
        assert result.reports == []

    def test_figure3_bug_found(self, figure3_source):
        result = detect_bmoc(build(figure3_source))
        assert len(result.bmoc_channel_bugs()) == 1
        assert result.reports[0].blocked_ops[0].kind == "recv"

    def test_figure4_bug_found(self, figure4_source):
        result = detect_bmoc(build(figure4_source))
        assert len(result.bmoc_channel_bugs()) == 1
        assert result.reports[0].blocked_ops[0].kind == "send"

    def test_leaked_sender(self):
        result = detect(
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}"
        )
        assert len(result.reports) == 1

    def test_blocked_receiver_in_parent(self):
        result = detect(
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tselect {\n\t\tcase ch <- 1:\n\t\tdefault:\n\t\t}\n\t}()\n"
            "\t<-ch\n}"
        )
        assert result.reports
        assert any(op.kind == "recv" for r in result.reports for op in r.blocked_ops)

    def test_channel_mutex_deadlock_categorized(self):
        result = detect(
            "func main() {\n\tvar mu sync.Mutex\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tmu.Lock()\n\t\tch <- 1\n\t\tmu.Unlock()\n\t}()\n"
            "\tmu.Lock()\n\t<-ch\n\tmu.Unlock()\n}"
        )
        assert result.bmoc_mutex_bugs()

    def test_report_carries_scope_and_witness(self):
        result = detect(
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}"
        )
        report = result.reports[0]
        assert report.scope_functions
        assert "O" in report.witness.render()
        rendered = report.render()
        assert "blocks forever" in rendered


class TestNoFalseAlarms:
    def test_clean_rendezvous(self):
        result = detect(
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\t<-ch\n}"
        )
        assert result.reports == []

    def test_clean_buffered_single_send(self):
        result = detect(
            "func main() {\n\tch := make(chan int, 1)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\t<-ch\n}"
        )
        assert result.reports == []

    def test_clean_close_signal(self):
        result = detect(
            "func main() {\n\tdone := make(chan struct{})\n"
            "\tgo func() {\n\t\tprintln(1)\n\t\tclose(done)\n\t}()\n\t<-done\n}"
        )
        assert result.reports == []

    def test_clean_worker_pipeline(self):
        result = detect(
            "func main() {\n\tjobs := make(chan int, 3)\n"
            "\tgo func() {\n\t\tjobs <- 1\n\t\tjobs <- 2\n\t\tclose(jobs)\n\t}()\n"
            "\tfor v := range jobs {\n\t\tprintln(v)\n\t}\n}"
        )
        assert result.reports == []

    def test_ctx_done_wait_not_reported(self):
        result = detect(
            "func main() {\n\tctx := context.Background()\n\t<-ctx.Done()\n}"
        )
        # waiting on a context forever is runtime-controlled, not a BMOC bug
        assert result.reports == []


class TestDetectorRuntimeAgreement:
    """Every detector report on these programs corresponds to a schedule
    that actually blocks — and patched versions neither report nor block."""

    CASES = [
        (
            "leak",
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}",
            True,
        ),
        (
            "ok",
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(<-ch)\n}",
            False,
        ),
        (
            "closed",
            "func main() {\n\tch := make(chan int)\n\tclose(ch)\n\tprintln(<-ch)\n}",
            False,
        ),
    ]

    def test_agreement(self):
        for name, source, expect_bug in self.CASES:
            program = build(source)
            reports = detect_bmoc(program).reports
            runs = explore_schedules(program, seeds=20, max_steps=5000)
            dynamic = any(r.blocked_forever for r in runs)
            assert bool(reports) == expect_bug, name
            assert dynamic == expect_bug, name


class TestStats:
    def test_stats_populated(self):
        result = detect(
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}"
        )
        stats = result.stats
        assert stats.channels_analyzed == 1
        assert stats.combinations >= 1
        assert stats.solver_calls >= 1
        assert stats.sat_results >= 1
        assert stats.elapsed_seconds > 0

    def test_disentangle_false_uses_main(self):
        source = (
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}"
        )
        result = detect_bmoc(build(source), disentangle=False)
        assert len(result.reports) == 1

    def test_deduplication(self):
        # two identical risky sends at different lines: two distinct bugs
        result = detect(
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n"
            "\tgo func() {\n\t\tch <- 2\n\t}()\n\tprintln(0)\n}"
        )
        lines = {op.line for r in result.reports for op in r.blocked_ops}
        assert len(lines) == 2
