"""Tests for per-goroutine path enumeration and combination filtering."""

from repro.analysis.alias import run_alias_analysis
from repro.analysis.callgraph import build_call_graph
from repro.analysis.dependency import build_dependency_graph, compute_pset
from repro.analysis.primitives import find_primitives
from repro.analysis.scope import compute_all_scopes
from repro.detector.paths import (
    BranchEvent,
    OpEvent,
    PathEnumerator,
    SelectChoice,
    SpawnEvent,
    conditions_satisfiable,
    enumerate_combinations,
)
from tests.conftest import build


def make_enumerator(source: str, channel_label: str = None):
    prog = build(source)
    cg = build_call_graph(prog)
    alias = run_alias_analysis(prog, cg)
    pmap = find_primitives(prog, cg, alias)
    scopes = compute_all_scopes(pmap, cg)
    deps = build_dependency_graph(prog, cg, pmap)
    channels = [p for p in pmap if p.site.kind == "chan"]
    if channel_label is not None:
        channels = [p for p in channels if p.site.label.startswith(channel_label)]
    chan = channels[0]
    pset = compute_pset(chan, deps, scopes)
    scope = scopes[chan]
    enumerator = PathEnumerator(prog, cg, alias, pmap, pset, scope.functions)
    return enumerator, scope, chan


class TestEnumeration:
    def test_straight_line_single_path(self):
        enumerator, scope, _ = make_enumerator(
            "func f() {\n\tch := make(chan int, 1)\n\tch <- 1\n\t<-ch\n}"
        )
        paths = enumerator.enumerate("f")
        assert len(paths) == 1
        assert [e.kind for e in paths[0].op_events()] == ["send", "recv"]

    def test_branch_doubles_paths(self):
        enumerator, _, _ = make_enumerator(
            "func f(x int) {\n\tch := make(chan int, 1)\n"
            "\tif x > 0 {\n\t\tch <- 1\n\t}\n\t<-ch\n}"
        )
        paths = enumerator.enumerate("f")
        assert len(paths) == 2
        op_counts = sorted(len(p.op_events()) for p in paths)
        assert op_counts == [1, 2]

    def test_loop_unrolled_at_most_twice(self):
        enumerator, _, _ = make_enumerator(
            "func f(n int) {\n\tch := make(chan int, 9)\n"
            "\tfor i := 0; i < n; i++ {\n\t\tch <- i\n\t}\n}"
        )
        paths = enumerator.enumerate("f")
        send_counts = {len(p.op_events()) for p in paths}
        assert send_counts <= {0, 1, 2}
        assert 2 in send_counts

    def test_infinite_loop_paths_truncated(self):
        enumerator, _, _ = make_enumerator(
            "func f() {\n\tch := make(chan int)\n\tfor {\n\t\tch <- 1\n\t}\n}"
        )
        paths = enumerator.enumerate("f")
        assert paths  # truncated paths are still emitted
        assert all(len(p.op_events()) <= 2 for p in paths)

    def test_irrelevant_callee_skipped(self):
        enumerator, _, _ = make_enumerator(
            "func noise() {\n\tprintln(1)\n}\n"
            "func f() {\n\tch := make(chan int, 1)\n\tnoise()\n\tch <- 1\n}"
        )
        paths = enumerator.enumerate("f")
        assert len(paths) == 1

    def test_relevant_callee_inlined(self):
        enumerator, _, _ = make_enumerator(
            "func helper(c chan int) {\n\tc <- 1\n}\n"
            "func f() {\n\tch := make(chan int, 1)\n\thelper(ch)\n\t<-ch\n}"
        )
        paths = enumerator.enumerate("f")
        assert [e.kind for e in paths[0].op_events()] == ["send", "recv"]

    def test_spawn_event_recorded(self):
        enumerator, _, _ = make_enumerator(
            "func f() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\t<-ch\n}"
        )
        paths = enumerator.enumerate("f")
        assert any(isinstance(e, SpawnEvent) for e in paths[0].events)

    def test_select_branches_enumerated(self):
        enumerator, _, _ = make_enumerator(
            "func f(x chan int) {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n"
            "\tselect {\n\tcase <-ch:\n\tdefault:\n\t}\n}"
        )
        paths = enumerator.enumerate("f")
        chosens = set()
        for path in paths:
            for event in path.events:
                if isinstance(event, SelectChoice):
                    chosens.add("default" if event.chosen == "default" else "case")
        assert chosens == {"default", "case"}

    def test_deferred_ops_appended_at_return(self):
        enumerator, _, _ = make_enumerator(
            "func f() {\n\tch := make(chan int, 1)\n\tdefer close(ch)\n\tch <- 1\n}"
        )
        paths = enumerator.enumerate("f")
        kinds = [e.kind for e in paths[0].op_events()]
        assert kinds == ["send", "close"]

    def test_infeasible_single_path_filtered(self):
        enumerator, _, _ = make_enumerator(
            "func f(x int) {\n\tch := make(chan int, 2)\n"
            "\tif x > 5 {\n\t\tch <- 1\n\t}\n\tif x <= 5 {\n\t\tch <- 2\n\t}\n}"
        )
        paths = enumerator.enumerate("f")
        # the both-true and both-false paths contradict over read-only x
        assert len(paths) == 2
        assert all(len(p.op_events()) == 1 for p in paths)


class TestConditionSatisfiability:
    def _cond(self, var, op, const, taken, read_only=True):
        return BranchEvent(var=var, op=op, const=const, taken=taken, read_only=read_only, line=0)

    def test_contradiction_detected(self):
        conds = [self._cond("x", ">", 5, True), self._cond("x", "<=", 5, True)]
        assert not conditions_satisfiable(conds)

    def test_compatible_ranges(self):
        conds = [self._cond("x", ">", 2, True), self._cond("x", "<", 10, True)]
        assert conditions_satisfiable(conds)

    def test_negation_via_taken_flag(self):
        conds = [self._cond("x", ">", 5, False), self._cond("x", ">", 5, True)]
        assert not conditions_satisfiable(conds)

    def test_equality_conflict(self):
        conds = [self._cond("x", "==", 3, True), self._cond("x", "==", 4, True)]
        assert not conditions_satisfiable(conds)

    def test_equality_vs_inequality(self):
        conds = [self._cond("x", "==", 3, True), self._cond("x", "!=", 3, True)]
        assert not conditions_satisfiable(conds)

    def test_bool_conflict(self):
        conds = [self._cond("b", "==", True, True), self._cond("b", "==", True, False)]
        assert not conditions_satisfiable(conds)

    def test_mutable_vars_ignored(self):
        conds = [
            self._cond("x", ">", 5, True, read_only=False),
            self._cond("x", "<=", 5, True, read_only=False),
        ]
        assert conditions_satisfiable(conds)

    def test_different_vars_independent(self):
        conds = [self._cond("x", ">", 5, True), self._cond("y", "<=", 5, True)]
        assert conditions_satisfiable(conds)

    def test_pinned_value_outside_range(self):
        conds = [self._cond("x", "==", 3, True), self._cond("x", ">", 10, True)]
        assert not conditions_satisfiable(conds)


class TestCombinations:
    def test_figure1_has_three_combinations(self):
        enumerator, scope, _ = make_enumerator(
            "func StdCopy() int {\n\treturn 0\n}\n"
            "func Exec(ctx context.Context) int {\n"
            "\toutDone := make(chan int)\n"
            "\tgo func() {\n\t\terr := StdCopy()\n\t\toutDone <- err\n\t}()\n"
            "\tselect {\n\tcase err := <-outDone:\n\t\tif err != 0 {\n\t\t\treturn err\n\t\t}\n"
            "\tcase <-ctx.Done():\n\t\treturn 1\n\t}\n\treturn 0\n}"
        )
        combos = enumerate_combinations(enumerator, scope.lca)
        # the paper's running example: exactly three path combinations
        assert len(combos) == 3
        assert all(len(c.goroutines) == 2 for c in combos)

    def test_no_blocking_ops_filtered(self):
        enumerator, scope, _ = make_enumerator(
            "func f() {\n\tch := make(chan int, 5)\n\tch <- 1\n}"
        )
        combos = enumerate_combinations(enumerator, scope.lca)
        # buffered send can still block in theory (send is a blocking kind)
        assert all(c.has_blocking_op() for c in combos)

    def test_child_paths_expand(self):
        enumerator, scope, _ = make_enumerator(
            "func f(x int) {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tif x > 0 {\n\t\t\tch <- 1\n\t\t} else {\n\t\t\tch <- 2\n\t\t}\n\t}()\n"
            "\t<-ch\n}"
        )
        combos = enumerate_combinations(enumerator, scope.lca)
        assert len(combos) == 2
