"""repro.fleet unit coverage: planning, manifest, aggregation, driver.

The end-to-end parity + resume acceptance suite lives in
``test_fleet_resume.py``; this file exercises each fleet layer in
isolation plus the driver's failure handling (backpressure, dispatch
chaos, supervisor exhaustion).
"""

import json
import os

import pytest

from repro.fleet import (
    FleetSupervisor,
    SupervisorError,
    SweepManifest,
    SweepPlan,
    aggregate,
    canonical_bytes,
    materialize_bugset,
    outcome_from_detect,
    outcome_from_fuzz,
    merge_telemetry,
    plan_corpus,
    plan_fuzz,
    run_sweep,
    serial_sweep,
)
from repro.fuzz.campaign import run_campaign
from repro.resilience.faultinject import injected
from repro.service.daemon import AnalysisService
from repro.service.protocol import OVERLOADED


BUGGY = """package main

func leak() {
\tch := make(chan int)
\tgo func() {
\t\tch <- 1
\t}()
}

func main() {
\tleak()
}
"""

OK_PROG = """package main

func main() {
\tch := make(chan int, 1)
\tch <- 1
\t<-ch
}
"""


def write_corpus(root, cases):
    for name, source in cases.items():
        case_dir = os.path.join(str(root), name)
        os.makedirs(case_dir, exist_ok=True)
        with open(os.path.join(case_dir, "main.go"), "w") as handle:
            handle.write(source)
    return str(root)


@pytest.fixture
def small_corpus(tmp_path):
    return write_corpus(
        tmp_path / "corpus",
        {"alpha": BUGGY, "beta": OK_PROG, "gamma": BUGGY, "delta": OK_PROG},
    )


class TestPlan:
    def test_corpus_plan_is_deterministic(self, small_corpus):
        p1, p2 = plan_corpus(small_corpus), plan_corpus(small_corpus)
        assert [u.uid for u in p1.units] == ["alpha", "beta", "delta", "gamma"]
        assert [u.to_json() for u in p1.units] == [u.to_json() for u in p2.units]

    def test_fingerprint_tracks_content(self, small_corpus):
        before = plan_corpus(small_corpus).by_uid()["beta"].fingerprint
        with open(os.path.join(small_corpus, "beta", "main.go"), "a") as handle:
            handle.write("// edited\n")
        after = plan_corpus(small_corpus).by_uid()["beta"].fingerprint
        assert before != after
        # untouched units keep their fingerprints
        assert (
            plan_corpus(small_corpus).by_uid()["alpha"].fingerprint
            == plan_corpus(small_corpus).by_uid()["alpha"].fingerprint
        )

    def test_fingerprint_folds_in_engine_version(self, small_corpus, monkeypatch):
        before = plan_corpus(small_corpus).by_uid()["alpha"].fingerprint
        from repro.engine import fingerprint as engine_fp

        monkeypatch.setattr(engine_fp, "ENGINE_VERSION", "test-bump")
        assert plan_corpus(small_corpus).by_uid()["alpha"].fingerprint != before

    def test_single_file_root_is_one_unit(self, tmp_path):
        path = tmp_path / "one.go"
        path.write_text(OK_PROG)
        plan = plan_corpus(str(path))
        assert len(plan.units) == 1
        assert plan.units[0].uid == "one"
        assert plan.units[0].path == str(path)

    def test_empty_tree_raises(self, tmp_path):
        os.makedirs(tmp_path / "empty" / "nested")
        with pytest.raises(FileNotFoundError):
            plan_corpus(str(tmp_path / "empty"))

    def test_fuzz_plan_shards_cover_the_range(self):
        plan = plan_fuzz(seed=9, count=55, shard_size=25)
        assert [(u.start, u.count) for u in plan.units] == [(0, 25), (25, 25), (50, 5)]
        assert [u.uid for u in plan.units] == [
            "fuzz-s9-00000",
            "fuzz-s9-00025",
            "fuzz-s9-00050",
        ]
        # spec changes change fingerprints
        assert (
            plan_fuzz(seed=9, count=55, shard_size=25).units[0].fingerprint
            != plan_fuzz(seed=10, count=55, shard_size=25).units[0].fingerprint
        )

    def test_materialize_bugset_is_idempotent(self, tmp_path):
        root = str(tmp_path / "bugset")
        dirs = materialize_bugset(root)
        assert len(dirs) == 49
        before = [u.fingerprint for u in plan_corpus(root).units]
        materialize_bugset(root)
        assert [u.fingerprint for u in plan_corpus(root).units] == before


class TestManifest:
    def test_latest_record_wins_and_failed_is_not_reusable(self, tmp_path):
        manifest = SweepManifest(str(tmp_path / "m.jsonl"))
        manifest.record_unit("u1", "fp1", ok=True, outcome={"kind": "project"})
        manifest.record_unit("u1", "fp1", ok=False, outcome=None, meta={"error": "x"})
        assert manifest.reusable_outcome("u1", "fp1") is None
        manifest.record_unit("u1", "fp1", ok=True, outcome={"kind": "project", "v": 2})
        assert manifest.reusable_outcome("u1", "fp1") == {"kind": "project", "v": 2}

    def test_fingerprint_mismatch_is_not_reusable(self, tmp_path):
        manifest = SweepManifest(str(tmp_path / "m.jsonl"))
        manifest.record_unit("u1", "fp1", ok=True, outcome={"kind": "project"})
        assert manifest.reusable_outcome("u1", "other") is None

    def test_torn_tail_is_skipped(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        manifest = SweepManifest(path)
        manifest.record_unit("u1", "fp1", ok=True, outcome={"kind": "project"})
        with open(path, "a") as handle:
            handle.write('{"kind": "unit", "uid": "u2", "fing')  # killed mid-write
        assert manifest.completed_uids() == ["u1"]
        # and appending after a torn tail still works
        manifest.record_unit("u3", "fp3", ok=True, outcome={"kind": "project"})
        assert "u3" in manifest.completed_uids()


class TestReport:
    def test_outcome_from_detect_keeps_only_the_deterministic_slice(self):
        payload = {
            "code": 1,
            "health": "ok",
            "timed_out": False,
            "bmoc": 1,
            "traditional": 0,
            "reports": [{"category": "bmoc-chan", "description": "d",
                         "lines": [3], "render": "r", "extra": "dropped"}],
            "generation": 7,
            "elapsed_seconds": 1.23,
            "shards": {"cached": 5},
        }
        outcome = outcome_from_detect(payload)
        assert "generation" not in outcome and "elapsed_seconds" not in outcome
        assert "shards" not in outcome
        assert outcome["reports"][0] == {
            "category": "bmoc-chan", "description": "d", "lines": [3], "render": "r"
        }

    def test_canonical_bytes_ignores_dict_insertion_order(self):
        a = {"kind": "x", "totals": {"a": 1, "b": 2}}
        b = {"totals": {"b": 2, "a": 1}, "kind": "x"}
        assert canonical_bytes(a) == canonical_bytes(b)

    def test_aggregate_counts_and_marks_incomplete(self, small_corpus):
        plan = plan_corpus(small_corpus)
        outcomes = {
            "alpha": outcome_from_detect(
                {"code": 1, "health": "ok", "reports": [{"category": "bmoc-chan"}]}
            ),
            "beta": outcome_from_detect({"code": 0, "health": "ok", "reports": []}),
        }
        report = aggregate(plan, outcomes)
        assert report["totals"]["units"] == 4
        assert report["totals"]["completed"] == 2
        assert report["totals"]["incomplete"] == ["delta", "gamma"]
        assert report["totals"]["by_category"] == {"bmoc-chan": 1}

    def test_merge_telemetry_separates_skipped_from_executed(self):
        tel = merge_telemetry(
            {
                "a": {"daemon": "d0", "attempts": 2, "elapsed_seconds": 0.5},
                "b": {"skipped": True},
            },
            elapsed_seconds=1.0,
            restarts=1,
        )
        assert tel["executed"] == 1 and tel["skipped"] == 1
        assert tel["redispatches"] == 1
        assert tel["by_daemon"] == {"d0": 1}
        assert tel["units_per_second"] == 1.0


class _StubClient:
    """Sheds the first ``sheds`` detect calls with OVERLOADED, then serves."""

    def __init__(self, sheds):
        self.to_shed = sheds
        self.calls = []

    def result(self, method, params=None, **kw):
        self.calls.append((method, params))
        return {"ok": True}

    def call(self, method, params=None, **kw):
        self.calls.append((method, params))
        if self.to_shed > 0:
            self.to_shed -= 1
            return {
                "id": 1,
                "error": {"code": OVERLOADED, "message": "shed", "retry_after": 0.001},
            }
        return {
            "id": 1,
            "result": {"code": 0, "health": "ok", "reports": [],
                       "bmoc": 0, "traditional": 0, "timed_out": False},
        }


class _StubSupervisor:
    def __init__(self, client):
        self.daemons = {"d0": object()}
        self._client = client
        self.incidents = []
        self.registered = set()

    def client(self, name):
        return self._client

    def checkpoint(self, label):
        pass

    def mark_registered(self, name, tenant):
        self.registered.add(tenant)

    def is_registered(self, name, tenant):
        return tenant in self.registered

    def restarts(self):
        return 0


class TestDriver:
    def test_thread_fleet_matches_serial(self, small_corpus, tmp_path):
        plan = plan_corpus(small_corpus)
        fleet = run_sweep(
            plan, daemons=2, mode="thread",
            manifest_path=str(tmp_path / "m.jsonl"),
        )
        serial = serial_sweep(plan)
        assert fleet.complete() and not fleet.failed
        assert canonical_bytes(fleet.report()) == canonical_bytes(serial.report())
        # both daemons did work on 4 units
        assert sum(fleet.telemetry()["by_daemon"].values()) == 4

    def test_backpressure_hint_is_honoured(self, small_corpus):
        plan = plan_corpus(small_corpus)
        client = _StubClient(sheds=3)
        result = run_sweep(plan, supervisor=_StubSupervisor(client))
        assert result.complete()
        assert result.sheds == 3
        # every unit was registered exactly once on the single stub daemon
        registers = [c for c in client.calls if c[0] == "register"]
        assert len(registers) == 4

    def test_dispatch_fault_restarts_daemon_and_redispatches(
        self, small_corpus, tmp_path
    ):
        plan = plan_corpus(small_corpus)
        serial = serial_sweep(plan)
        with injected("fleet-dispatch@gamma:raise:times=1"):
            result = run_sweep(
                plan, daemons=2, mode="thread",
                manifest_path=str(tmp_path / "m.jsonl"),
            )
        assert result.complete()
        assert result.restarts == 1
        assert any("gamma" in i for i in result.incidents)
        assert canonical_bytes(result.report()) == canonical_bytes(serial.report())

    def test_supervisor_spawn_exhaustion_is_fatal(self, small_corpus, tmp_path):
        plan = plan_corpus(small_corpus)
        with injected("fleet-supervisor@spawn:raise"):
            with pytest.raises(SupervisorError):
                run_sweep(
                    plan, daemons=1, mode="thread",
                    manifest_path=str(tmp_path / "m.jsonl"),
                )

    def test_spawn_retries_past_transient_faults(self, small_corpus):
        # one injected spawn failure is inside the default retry budget
        with injected("fleet-supervisor@spawn:raise:times=1"):
            sup = FleetSupervisor(1, os.path.join(small_corpus, "beta")).start()
        try:
            assert sup.client("d0").result("ping")["ok"]
        finally:
            sup.stop()


class TestFuzzSharding:
    def test_run_campaign_start_offsets_the_index_range(self):
        full = run_campaign(11, 6)
        shard = run_campaign(11, 2, start=3)
        assert [t.index for t in shard.triages] == [3, 4]
        assert [t.to_dict() for t in shard.triages] == [
            t.to_dict() for t in full.triages[3:5]
        ]

    def test_daemon_fuzz_method_matches_direct_campaign(self, tmp_path):
        seed_file = tmp_path / "seed.go"
        seed_file.write_text(OK_PROG)
        service = AnalysisService(str(seed_file)).start()
        try:
            response = service.call("fuzz", {"seed": 11, "start": 2, "count": 3})
            assert "result" in response
            payload = response["result"]
        finally:
            service.stop()
        direct = run_campaign(11, 3, start=2)
        # normalize both sides: in-process call() skips the wire, so
        # tuples have not been flattened to lists yet
        assert json.loads(json.dumps(payload["triages"])) == json.loads(
            json.dumps([t.to_dict() for t in direct.triages])
        )
        assert payload["unexplained"] == len(direct.unexplained())

    def test_daemon_fuzz_method_validates_params(self, tmp_path):
        seed_file = tmp_path / "seed.go"
        seed_file.write_text(OK_PROG)
        service = AnalysisService(str(seed_file)).start()
        try:
            response = service.call("fuzz", {"seed": 1, "count": 0})
            assert "error" in response
            response = service.call("fuzz", {"seed": 1, "count": "five"})
            assert "error" in response
        finally:
            service.stop()

    def test_sharded_fuzz_sweep_matches_serial(self, tmp_path):
        plan = plan_fuzz(seed=11, count=10, shard_size=5)
        serial = serial_sweep(plan)
        fleet = run_sweep(
            plan, daemons=2, mode="thread",
            manifest_path=str(tmp_path / "m.jsonl"),
        )
        assert fleet.complete()
        assert canonical_bytes(fleet.report()) == canonical_bytes(serial.report())
        # shards concatenated in plan order reproduce the unsharded run
        merged = []
        for unit in plan.units:
            merged.extend(serial.outcomes[unit.uid]["triages"])
        unsharded = run_campaign(11, 10)
        assert merged == [t.to_dict() for t in unsharded.triages]
