"""Chaos suite: deterministic fault injection across the execution matrix.

The resilience contract under test: a single-site fault loses *at most*
the faulted analysis unit — every other unit's report is byte-identical
to the fault-free run — and the degradation is the same whether detection
runs serially, with ``jobs=4`` threads, or with ``jobs=4`` forked
processes (per-(rule, label) fault counters make the plan
schedule-independent).
"""

from __future__ import annotations

import pytest

from repro.cli import EXIT_INCIDENT, main
from repro.detector.gcatch import run_gcatch
from repro.engine import ResultCache
from repro.resilience import HEALTH_DEGRADED, HEALTH_OK, injected
from tests.conftest import build

TWO_LEAKS = """
func leakOne() {
	alpha := make(chan int)
	go func() {
		alpha <- 1
	}()
}

func leakTwo() {
	bravo := make(chan int)
	go func() {
		bravo <- 2
	}()
}

func main() {
	leakOne()
	leakTwo()
}
"""

CLEAN = """
func main() {
	done := make(chan int, 1)
	go func() {
		done <- 1
	}()
	<-done
}
"""

#: the execution matrix every chaos case runs over
CONFIGS = [
    pytest.param({"jobs": 1}, id="serial"),
    pytest.param({"jobs": 4, "backend": "thread"}, id="jobs4-thread"),
    pytest.param({"jobs": 4, "backend": "process"}, id="jobs4-process"),
]

#: single-site fault plans targeting only the alpha channel's unit
ALPHA_FAULTS = [
    pytest.param("encode@alpha:raise", "encode", id="encode"),
    pytest.param("solve@alpha:raise", "solve", id="solve"),
]


def _renders(result):
    return {r.description: r.render() for r in result.all_reports()}


@pytest.fixture(scope="module")
def program():
    return build(TWO_LEAKS, "chaos.go")


@pytest.fixture(scope="module")
def baseline(program):
    return run_gcatch(program)


class TestSingleSiteFaultParity:
    """Fault one unit; assert blast radius == that unit, at every config."""

    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("spec,site", ALPHA_FAULTS)
    def test_only_faulted_shard_lost(self, program, baseline, config, spec, site):
        with injected(spec):
            result = run_gcatch(program, **config)
        assert result.health() == HEALTH_DEGRADED
        # exactly the alpha unit is gone; bravo's report is byte-identical
        survivors = _renders(result)
        expected = {
            desc: render
            for desc, render in _renders(baseline).items()
            if "alpha" not in desc
        }
        assert survivors == expected
        [incident] = result.incidents
        assert incident.site == site
        assert "alpha" in incident.label
        assert incident.exception == "FaultInjected"

    @pytest.mark.parametrize("spec,site", ALPHA_FAULTS)
    def test_degradation_identical_across_configs(self, program, spec, site):
        outcomes = []
        for config in ({"jobs": 1}, {"jobs": 4, "backend": "thread"},
                       {"jobs": 4, "backend": "process"}):
            with injected(spec):
                result = run_gcatch(program, **config)
            outcomes.append(
                (
                    sorted(_renders(result)),
                    [(i.site, i.label, i.exception, i.digest)
                     for i in result.incidents],
                    result.health(),
                )
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]

    @pytest.mark.parametrize("config", CONFIGS)
    def test_checker_fault_spares_bmoc(self, program, baseline, config):
        # crash every BMOC unit; the five traditional checkers still run
        with injected("solve:raise"):
            result = run_gcatch(program, **config)
        assert result.health() == HEALTH_DEGRADED
        assert not result.bmoc.reports
        assert len(result.incidents) == 2  # one per channel


class TestCacheFaultParity:
    """Cache faults never lose reports: a bad read is a re-analysis, a bad
    write is an incident on an otherwise complete run."""

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_corrupt_read_recovers_fully(self, program, baseline, tmp_path, jobs):
        cache = ResultCache(str(tmp_path / "cache"))
        run_gcatch(program, jobs=jobs, cache=cache)  # warm
        fresh = ResultCache(str(tmp_path / "cache"))
        with injected("cache-read:corrupt"):
            result = run_gcatch(program, jobs=jobs, cache=fresh)
        assert _renders(result) == _renders(baseline)
        assert result.health() == HEALTH_OK
        assert fresh.corrupt >= 1  # quarantined, then re-analyzed

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_write_failure_keeps_all_reports(self, program, baseline, tmp_path, jobs):
        cache = ResultCache(str(tmp_path / "cache"))
        with injected("cache-write:raise"):
            result = run_gcatch(program, jobs=jobs, cache=cache)
        assert _renders(result) == _renders(baseline)
        assert result.health() == HEALTH_DEGRADED
        assert all(i.site == "cache-write" for i in result.incidents)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_injected_corrupt_write_quarantined_next_run(
        self, program, baseline, tmp_path, jobs
    ):
        cache = ResultCache(str(tmp_path / "cache"))
        with injected("cache-write:corrupt"):
            run_gcatch(program, jobs=jobs, cache=cache)
        # the corrupt-mode write left garbage entries on disk; the next
        # (fault-free) run quarantines them and re-analyzes cleanly
        fresh = ResultCache(str(tmp_path / "cache"))
        result = run_gcatch(program, jobs=jobs, cache=fresh)
        assert _renders(result) == _renders(baseline)
        assert result.health() == HEALTH_OK
        assert fresh.corrupt >= 1


class TestTransientRecovery:
    @pytest.mark.parametrize("config", CONFIGS)
    def test_transient_fault_retried_to_full_result(self, program, baseline, config):
        with injected("solve@alpha:raise-transient:times=1"):
            result = run_gcatch(program, max_retries=1, **config)
        assert result.health() == HEALTH_OK
        assert _renders(result) == _renders(baseline)

    @pytest.mark.parametrize("config", CONFIGS)
    def test_transient_fault_with_retries_disabled_degrades(
        self, program, config
    ):
        with injected("solve@alpha:raise-transient"):
            result = run_gcatch(program, max_retries=0, **config)
        assert result.health() == HEALTH_DEGRADED
        assert len(result.bmoc.reports) == 1


class TestStrictFlip:
    """Acceptance criterion: on a clean program, --strict flips exit 0 → 4
    under injection while the default mode stays 0 (degraded, partial)."""

    @pytest.fixture
    def clean_file(self, tmp_path):
        path = tmp_path / "clean.go"
        path.write_text("package main\n" + CLEAN)
        return str(path)

    def test_clean_program_exits_zero(self, clean_file):
        assert main(["detect", clean_file]) == 0

    @pytest.mark.parametrize("spec", ["solve:raise", "encode:raise"])
    def test_default_stays_zero_strict_flips_to_four(self, clean_file, spec, capsys):
        assert main(["detect", clean_file, "--faults", spec]) == 0
        out = capsys.readouterr().out
        assert "health: degraded" in out
        assert main(["detect", clean_file, "--faults", spec,
                     "--strict"]) == EXIT_INCIDENT

    def test_jobs4_same_flip(self, clean_file):
        argv = ["detect", clean_file, "--jobs", "4", "--faults", "solve:raise"]
        assert main(argv) == 0
        assert main(argv + ["--strict"]) == EXIT_INCIDENT


class TestAdmissionChaos:
    """The daemon's admission/scheduling path is itself a fault site:
    an injected crash there must become a structured incident on *that
    tenant's* response while the daemon keeps serving other tenants."""

    BUGGY = (
        "package main\n\nfunc main() {\n\tch := make(chan int)\n"
        "\tgo func() {\n\t\tch <- 1\n\t}()\n}\n"
    )

    @pytest.fixture
    def two_tenant_service(self, tmp_path):
        from repro.service import AnalysisService

        for name in ("a", "b"):
            d = tmp_path / name
            d.mkdir()
            (d / "main.go").write_text(self.BUGGY)
        service = AnalysisService(str(tmp_path / "a" / "main.go"), workers=1).start()
        response = service.call(
            "register", {"tenant": "b", "path": str(tmp_path / "b" / "main.go")}
        )
        assert "error" not in response, response
        yield service
        service.stop()

    @pytest.mark.parametrize("site", ["service-admission", "service-scheduler"])
    def test_injected_crash_isolated_to_faulted_tenant(
        self, two_tenant_service, site
    ):
        service = two_tenant_service
        # fault labels are '<tenant>:<method>'; 'b' matches only tenant b
        with injected(f"{site}@b:raise:times=1"):
            crashed = service.call("detect", tenant="b")
            assert crashed["error"]["incident"]["site"] == site
            # other tenants are served while the fault plan is active
            assert "result" in service.call("detect")
        # the faulted tenant recovers once the fault is exhausted
        assert "result" in service.call("detect", tenant="b")
        # the crash is on the incident ledger: health reports degraded
        health = service.call("health")["result"]
        assert health["health"] == "degraded"
        assert health["incidents"] >= 1
        assert any(i.site == site for i in service.firewall.incidents)
