"""Unit tests for repro.resilience: fault plans, the firewall, incidents,
health classification, cache quarantine, checker selection, validation
downgrades and the CLI exit-code policy."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.cli import EXIT_INCIDENT, main
from repro.detector.gcatch import run_gcatch
from repro.obs import Collector
from repro.resilience import (
    CORRUPT,
    FAULT_SITES,
    FaultInjected,
    FaultPlan,
    Firewall,
    HEALTH_DEGRADED,
    HEALTH_FAILED,
    HEALTH_OK,
    Incident,
    RetryPolicy,
    injected,
    is_transient,
    make_incident,
    maybe_fault,
    overall_health,
)
from tests.conftest import build

LEAK_TWO = """
func leakOne() {
	alpha := make(chan int)
	go func() {
		alpha <- 1
	}()
}

func leakTwo() {
	bravo := make(chan int)
	go func() {
		bravo <- 2
	}()
}

func main() {
	leakOne()
	leakTwo()
}
"""


# -- fault-plan parsing ------------------------------------------------------


class TestFaultPlanParsing:
    def test_simple_rule(self):
        plan = FaultPlan.parse("solve:raise")
        assert len(plan.rules) == 1
        rule = plan.rules[0]
        assert rule.site == "solve" and rule.mode == "raise" and rule.label == ""

    def test_default_mode_is_raise(self):
        assert FaultPlan.parse("parse").rules[0].mode == "raise"

    def test_label_and_options(self):
        rule = FaultPlan.parse("encode@alpha:raise-transient:n=3:times=2").rules[0]
        assert rule.site == "encode"
        assert rule.label == "alpha"
        assert rule.mode == "raise-transient"
        assert rule.n == 3 and rule.times == 2

    def test_multiple_rules(self):
        plan = FaultPlan.parse("solve:raise; cache-read:corrupt")
        assert [r.site for r in plan.rules] == ["solve", "cache-read"]

    def test_render_round_trips(self):
        spec = "solve@alpha:raise:times=1;encode:stall:ms=5"
        assert FaultPlan.parse(FaultPlan.parse(spec).render()).render() == (
            FaultPlan.parse(spec).render()
        )

    def test_unknown_site_names_valid_set(self):
        with pytest.raises(ValueError, match="valid sites"):
            FaultPlan.parse("warp:raise")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="valid modes"):
            FaultPlan.parse("solve:explode")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown fault option"):
            FaultPlan.parse("solve:raise:q=1")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="no rules"):
            FaultPlan.parse(" ; ")

    def test_all_documented_sites_parse(self):
        for site in FAULT_SITES:
            assert FaultPlan.parse(f"{site}:raise").rules[0].site == site


# -- fault-plan firing -------------------------------------------------------


class TestFaultPlanFiring:
    def test_raise_fires_with_site_and_label(self):
        plan = FaultPlan.parse("solve:raise")
        with pytest.raises(FaultInjected) as exc:
            plan.fire("solve", "chan@f:1:alpha")
        assert exc.value.site == "solve"
        assert exc.value.label == "chan@f:1:alpha"
        assert not exc.value.transient

    def test_label_substring_filter(self):
        plan = FaultPlan.parse("solve@alpha:raise")
        assert plan.fire("solve", "chan@f:1:bravo") is None
        with pytest.raises(FaultInjected):
            plan.fire("solve", "chan@f:1:alpha")

    def test_other_sites_unaffected(self):
        plan = FaultPlan.parse("solve:raise")
        assert plan.fire("encode", "x") is None

    def test_nth_call_only(self):
        plan = FaultPlan.parse("solve:raise:n=2")
        assert plan.fire("solve", "u") is None
        with pytest.raises(FaultInjected):
            plan.fire("solve", "u")
        assert plan.fire("solve", "u") is None

    def test_counts_are_per_label(self):
        # each unit counts its own calls: n=1 fires once for EVERY label,
        # which is what makes serial and jobs=4 degrade identically
        plan = FaultPlan.parse("solve:raise:n=1")
        with pytest.raises(FaultInjected):
            plan.fire("solve", "alpha")
        with pytest.raises(FaultInjected):
            plan.fire("solve", "bravo")

    def test_times_bounds_total_fires(self):
        plan = FaultPlan.parse("solve:raise-transient:times=1")
        with pytest.raises(FaultInjected) as exc:
            plan.fire("solve", "u")
        assert exc.value.transient
        assert plan.fire("solve", "u") is None

    def test_corrupt_returns_sentinel(self):
        plan = FaultPlan.parse("cache-read:corrupt")
        assert plan.fire("cache-read", "k") == CORRUPT

    def test_probability_is_seed_deterministic(self):
        a = [FaultPlan.parse("solve:corrupt:p=0.5", seed=7).fire("solve", str(i))
             for i in range(32)]
        b = [FaultPlan.parse("solve:corrupt:p=0.5", seed=7).fire("solve", str(i))
             for i in range(32)]
        assert a == b
        assert any(x == CORRUPT for x in a) and any(x is None for x in a)

    def test_maybe_fault_noop_without_plan(self):
        assert maybe_fault("solve", "anything") is False

    def test_injected_scopes_activation(self):
        with injected("solve:corrupt"):
            assert maybe_fault("solve", "u") is True
        assert maybe_fault("solve", "u") is False


# -- firewall ----------------------------------------------------------------


class TestFirewall:
    def test_ok_call_passes_value(self):
        fw = Firewall()
        guarded = fw.call(lambda: 42, site="shard")
        assert guarded.ok and guarded.value == 42 and not fw.incidents

    def test_crash_becomes_incident(self):
        collector = Collector()
        fw = Firewall(collector=collector)
        guarded = fw.call(lambda: 1 / 0, site="shard", label="alpha")
        assert not guarded.ok
        incident = guarded.incident
        assert incident.site == "shard" and incident.label == "alpha"
        assert incident.exception == "ZeroDivisionError"
        assert len(incident.digest) == 12
        assert fw.incidents == [incident]
        assert collector.counters["resilience.incident"] == 1

    def test_transient_crash_retries_then_succeeds(self):
        collector = Collector()
        fw = Firewall(collector=collector, policy=RetryPolicy(max_retries=2))
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise OSError("disk hiccup")
            return "fine"

        guarded = fw.call(flaky, site="cache-read")
        assert guarded.ok and guarded.value == "fine"
        assert len(calls) == 2
        assert collector.counters["resilience.retry"] == 1
        assert "resilience.gave-up" not in collector.counters

    def test_retries_exhausted_counts_gave_up(self):
        collector = Collector()
        fw = Firewall(collector=collector, policy=RetryPolicy(max_retries=2))

        def always(): raise EOFError("truncated")

        guarded = fw.call(always, site="cache-read")
        assert not guarded.ok
        assert guarded.incident.attempts == 3
        assert guarded.incident.transient
        assert collector.counters["resilience.retry"] == 2
        assert collector.counters["resilience.gave-up"] == 1

    def test_nontransient_never_retried(self):
        fw = Firewall(policy=RetryPolicy(max_retries=5))
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("logic error")

        assert not fw.call(boom, site="shard").ok
        assert len(calls) == 1

    def test_reraise_passthrough(self):
        fw = Firewall()
        with pytest.raises(KeyError):
            fw.call(lambda: (_ for _ in ()).throw(KeyError("x")), site="s",
                    reraise=(KeyError,))

    def test_record_false_defers_ledger(self):
        fw = Firewall()
        guarded = fw.call(lambda: 1 / 0, site="shard", record=False)
        assert not guarded.ok and not fw.incidents
        fw.record(guarded.incident)
        assert fw.incidents == [guarded.incident]

    def test_injected_transient_fault_is_retryable(self):
        assert is_transient(FaultInjected("solve", transient=True))
        assert not is_transient(FaultInjected("solve"))


# -- incidents and health ----------------------------------------------------


class TestIncidents:
    def test_fault_site_overrides_firewall_site(self):
        # a fault injected at 'solve' is reported at 'solve' even when the
        # shard-level firewall is what caught it
        try:
            raise FaultInjected("solve", "alpha")
        except FaultInjected as exc:
            incident = make_incident("shard", "alpha", exc)
        assert incident.site == "solve"

    def test_digest_stable_across_raises(self):
        def crash():
            try:
                raise ValueError("boom")
            except ValueError as exc:
                return make_incident("shard", "u", exc)

        assert crash().digest == crash().digest

    def test_message_truncated(self):
        try:
            raise ValueError("x" * 500)
        except ValueError as exc:
            incident = make_incident("shard", "u", exc)
        assert len(incident.message) == 200

    def test_incident_is_picklable(self):
        try:
            raise ValueError("boom")
        except ValueError as exc:
            incident = make_incident("shard", "u", exc)
        clone = pickle.loads(pickle.dumps(incident))
        assert clone == incident

    def test_health_classification(self):
        crash = Incident("shard", "u", "ValueError", "boom", "0" * 12)
        assert overall_health([], 5, 0) == HEALTH_OK
        assert overall_health([crash], 5, 1) == HEALTH_DEGRADED
        assert overall_health([crash], 5, 5) == HEALTH_FAILED
        assert overall_health([crash], 0, 0) == HEALTH_FAILED
        assert overall_health([crash], None, 0) == HEALTH_FAILED


# -- cache quarantine (satellite a) ------------------------------------------


class TestCacheQuarantine:
    def _warm(self, tmp_path):
        from repro.engine import ResultCache

        cache = ResultCache(str(tmp_path / "cache"))
        program = build(LEAK_TWO)
        run_gcatch(program, jobs=1, cache=cache)
        return cache, program

    def test_corrupt_entry_quarantined_on_read(self, tmp_path):
        cache, program = self._warm(tmp_path)
        paths = sorted((tmp_path / "cache").rglob("*.pkl"))
        assert paths
        paths[0].write_bytes(b"not a pickle at all")
        fresh_cache = type(cache)(str(tmp_path / "cache"))
        result = run_gcatch(program, jobs=1, cache=fresh_cache)
        # the corrupted entry was quarantined (deleted), the shard
        # re-analyzed, and the fresh result stored back at the same key
        assert fresh_cache.corrupt == 1
        assert result.health() == HEALTH_OK
        assert len(result.bmoc.reports) == 2
        pickle.loads(paths[0].read_bytes())  # rewritten entry is valid again

    def test_wrong_payload_type_quarantined(self, tmp_path):
        cache, program = self._warm(tmp_path)
        paths = sorted((tmp_path / "cache").rglob("*.pkl"))
        paths[0].write_bytes(pickle.dumps({"not": "a CachedShard"}))
        fresh_cache = type(cache)(str(tmp_path / "cache"))
        result = run_gcatch(program, jobs=1, cache=fresh_cache)
        assert fresh_cache.corrupt == 1
        assert result.health() == HEALTH_OK

    def test_injected_read_corruption_counts_and_recovers(self, tmp_path):
        cache, program = self._warm(tmp_path)
        fresh_cache = type(cache)(str(tmp_path / "cache"))
        collector = Collector()
        with injected("cache-read:raise"):
            result = run_gcatch(
                program, jobs=1, cache=fresh_cache, collector=collector
            )
        # every probe failed => every shard re-ran: zero lost reports,
        # though each failed probe is recorded as a cache-read incident
        assert len(result.bmoc.reports) == 2
        assert result.health() == HEALTH_DEGRADED
        assert all(i.site == "cache-read" for i in result.incidents)

    def test_injected_write_failure_is_incident_not_abort(self, tmp_path):
        from repro.engine import ResultCache

        cache = ResultCache(str(tmp_path / "cache"))
        program = build(LEAK_TWO)
        with injected("cache-write:raise"):
            result = run_gcatch(program, jobs=1, cache=cache)
        assert len(result.bmoc.reports) == 2
        assert result.health() == HEALTH_DEGRADED
        assert all(i.site == "cache-write" for i in result.incidents)


# -- checker selection (satellite b) -----------------------------------------


class TestCheckerSelection:
    def test_unknown_checker_is_incident_not_abort_serial(self):
        program = build(LEAK_TWO)
        result = run_gcatch(program, jobs=1, checkers=["double-lock", "warp-detector"])
        assert result.health() == HEALTH_DEGRADED
        assert len(result.incidents) == 1
        incident = result.incidents[0]
        assert incident.label == "warp-detector"
        assert "valid checkers" in incident.message
        assert "double-lock" in incident.message
        # the BMOC side is untouched
        assert len(result.bmoc.reports) == 2

    def test_unknown_checker_is_incident_not_abort_engine(self):
        program = build(LEAK_TWO)
        result = run_gcatch(program, jobs=2, checkers=["warp-detector"])
        assert result.health() == HEALTH_DEGRADED
        assert [s.outcome for s in result.failed_shards()] == ["failed"]
        assert "valid checkers" in result.incidents[0].message

    def test_env_checker_selection(self, monkeypatch):
        program = build(LEAK_TWO)
        monkeypatch.setenv("REPRO_CHECKERS", "double-lock,forget-unlock")
        result = run_gcatch(program, jobs=1)
        assert result.health() == HEALTH_OK
        assert result.units_total == 2 + 2  # two channels + two checkers


# -- serial firewall behaviour -----------------------------------------------


class TestSerialResilience:
    def test_single_channel_crash_degrades_not_aborts(self):
        program = build(LEAK_TWO)
        collector = Collector()
        with injected("solve@alpha:raise"):
            result = run_gcatch(program, jobs=1, collector=collector)
        assert result.health() == HEALTH_DEGRADED
        assert len(result.bmoc.reports) == 1
        assert "bravo" in result.bmoc.reports[0].description
        assert result.incidents[0].site == "solve"
        assert collector.counters["resilience.incident"] == 1

    def test_detect_init_crash_is_failed_run(self):
        program = build(LEAK_TWO)
        with injected("ssa-build:raise"):
            # ssa-build faults fire in build_program, not detection; simulate
            # a detector-init crash by faulting every encode AND solve so all
            # units die
            pass
        with injected("encode:raise"):
            result = run_gcatch(program, jobs=1)
        assert result.health() == HEALTH_DEGRADED  # checkers survived
        assert not result.bmoc.reports
        assert result.units_failed == 2

    def test_parse_fault_fires(self):
        from repro.golang.parser import parse_file

        with injected("parse:raise"):
            with pytest.raises(FaultInjected):
                parse_file("package main\nfunc main() {}\n", "x.go")

    def test_ssa_build_fault_fires(self):
        from repro.ssa.builder import build_program

        with injected("ssa-build:raise"):
            with pytest.raises(FaultInjected):
                build_program("package main\nfunc main() {}\n", "x.go")

    def test_max_retries_env(self, monkeypatch):
        from repro.detector.gcatch import resolve_max_retries

        monkeypatch.setenv("REPRO_MAX_RETRIES", "3")
        assert resolve_max_retries() == 3
        assert resolve_max_retries(0) == 0

    def test_transient_solve_fault_retried_to_success(self):
        program = build(LEAK_TWO)
        collector = Collector()
        with injected("solve@alpha:raise-transient:times=1"):
            result = run_gcatch(program, jobs=1, collector=collector, max_retries=1)
        # one transient crash, one retry, full report set
        assert result.health() == HEALTH_OK
        assert len(result.bmoc.reports) == 2
        assert collector.counters["resilience.retry"] == 1


# -- fixer + validation resilience (satellite c) -----------------------------


class TestFixerResilience:
    def test_strategy_crash_falls_through(self, figure1_source):
        from repro.api import Project

        project = Project.from_source(figure1_source, "figure1.go")
        bugs = project.detect().bmoc.bmoc_channel_bugs()
        assert bugs
        with injected("fix-apply@buffer:raise"):
            fix = project.fix(bugs[0])
        # buffer (the paper's strategy for Figure 1) crashed; the incident
        # is on the result and the dispatcher moved on without raising
        assert any(i.site == "fix-apply" and "buffer" in i.label
                   for i in fix.incidents)

    def test_clean_fix_has_no_incidents(self, figure1_source):
        from repro.api import Project

        project = Project.from_source(figure1_source, "figure1.go")
        bugs = project.detect().bmoc.bmoc_channel_bugs()
        fix = project.fix(bugs[0])
        assert fix.fixed and not fix.incidents

    def test_validate_crash_is_incident(self, figure1_source):
        from repro.api import Project
        from repro.fixer.validate import validate_patch

        project = Project.from_source(figure1_source, "figure1.go")
        bugs = project.detect().bmoc.bmoc_channel_bugs()
        fix = project.fix(bugs[0])
        assert fix.fixed
        with injected("validate:raise"):
            validation = validate_patch(figure1_source, fix, entry="main")
        assert validation.incident is not None
        assert validation.incident.site == "validate"
        assert not validation.correct
        assert "ERROR" in validation.render()

    def test_downgrade_record(self):
        from repro.fixer.validate import ValidationDowngrade

        downgrade = ValidationDowngrade(which="patched", max_runs=64, seeds=8)
        assert "patched" in downgrade.reason
        assert "64" in downgrade.reason and "8" in downgrade.reason


# -- CLI exit-code policy ----------------------------------------------------


class TestCLIPolicy:
    @pytest.fixture
    def leaky_file(self, tmp_path):
        path = tmp_path / "leaky.go"
        path.write_text("package main\n" + LEAK_TWO)
        return str(path)

    def test_default_mode_reports_degraded_exit_unchanged(self, leaky_file, capsys):
        code = main(["detect", leaky_file, "--faults", "solve@alpha:raise"])
        out = capsys.readouterr().out
        assert code == 1  # bravo's bug still found
        assert "health: degraded" in out
        assert "FaultInjected" in out

    def test_strict_mode_flips_exit_to_incident(self, leaky_file, capsys):
        assert main(["detect", leaky_file, "--faults", "solve@alpha:raise",
                     "--strict"]) == EXIT_INCIDENT

    def test_clean_run_unaffected_by_strict(self, leaky_file):
        assert main(["detect", leaky_file, "--strict"]) == 1
        assert main(["detect", leaky_file]) == 1

    def test_env_faults_honoured(self, leaky_file, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "solve@alpha:raise")
        assert main(["detect", leaky_file, "--strict"]) == EXIT_INCIDENT
        # main() deactivates the plan on exit
        from repro.resilience import active_plan

        assert active_plan() is None

    def test_stats_json_incidents_block(self, leaky_file, capsys):
        code = main(["stats", leaky_file, "--json",
                     "--faults", "solve@alpha:raise"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["schema"] == "repro.obs/2"
        assert payload["health"] == "degraded"
        [incident] = payload["incidents"]
        assert incident["site"] == "solve"
        assert incident["exception"] == "FaultInjected"

    def test_stats_json_clean_omits_incidents(self, leaky_file, capsys):
        main(["stats", leaky_file, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["health"] == "ok"
        assert "incidents" not in payload

    def test_fix_strict_exit_on_strategy_crash(self, leaky_file):
        # both strategies' crashes (per channel) surface; strict exits 4
        code = main(["fix", leaky_file, "--faults", "fix-apply:raise",
                     "--strict"])
        assert code == EXIT_INCIDENT

    def test_render_health_table(self):
        from repro.report.table import render_health

        crash = Incident("solve", "alpha", "ValueError", "boom", "abc123def456")
        out = render_health("degraded", [crash])
        assert "health: degraded" in out
        assert "alpha" in out and "abc123def456" in out
        assert render_health("ok") == "health: ok"


# -- batched solver-session degradation --------------------------------------

# alpha and gamma each leak cheaply (one two-node solve); bravo's two
# senders need three solves and more nodes than the per-primitive budget
# below allows, so bravo — and only bravo — exhausts its budget mid-batch
MIXED_COST = """
func leakCheap() {
	alpha := make(chan int)
	go func() {
		alpha <- 1
	}()
}

func hungry() {
	bravo := make(chan int)
	go func() {
		bravo <- 1
	}()
	go func() {
		bravo <- 2
	}()
}

func leakCheapToo() {
	gamma := make(chan int)
	go func() {
		gamma <- 1
	}()
}

func main() {
	leakCheap()
	hungry()
	leakCheapToo()
}
"""


class TestBatchedTimeoutDegradation:
    """A per-group budget exhausted mid-batch must TIMEOUT only that
    primitive's remaining groups, keep every sibling's results, and leave
    the run degraded — never failed (ISSUE 8 satellite)."""

    @pytest.mark.parametrize("mode", ["batched", "classic"])
    def test_midbatch_budget_timeout_keeps_siblings(self, mode):
        program = build(MIXED_COST)
        result = run_gcatch(
            program, jobs=2, budget_solver_nodes=4, solver_mode=mode
        )
        timeouts = result.timed_out_shards()
        assert len(timeouts) == 1 and "bravo" in timeouts[0].label
        labels = {r.primitive.site.label for r in result.bmoc.reports}
        assert labels == {"alpha", "gamma"}  # siblings kept
        assert result.bmoc.stats.analysis_timeouts == 1
        assert result.health() != HEALTH_FAILED

    def test_modes_walk_the_same_budget_trajectory(self):
        """Memo hits charge the memoized node count, so batched and
        classic exhaust a budget at exactly the same group."""
        program = build(MIXED_COST)
        outcomes = {}
        for mode in ("batched", "classic"):
            result = run_gcatch(
                program, jobs=2, budget_solver_nodes=4, solver_mode=mode
            )
            outcomes[mode] = (
                sorted(r.render() for r in result.all_reports()),
                [s.label for s in result.timed_out_shards()],
                result.bmoc.stats.solver_calls,
                result.bmoc.stats.solver_timeouts,
                result.health(),
            )
        assert outcomes["batched"] == outcomes["classic"]

    @pytest.mark.parametrize("mode", ["batched", "classic"])
    def test_timeout_plus_crash_degrades_not_fails(self, mode):
        """The full degradation ladder in one run: bravo exhausts its
        budget (TIMEOUT), gamma's solve crashes (incident), and alpha's
        report still ships under ``degraded`` health."""
        program = build(MIXED_COST)
        with injected("solve@gamma:raise"):
            result = run_gcatch(
                program, jobs=2, budget_solver_nodes=4, solver_mode=mode
            )
        assert result.health() == HEALTH_DEGRADED
        assert any("bravo" in s.label for s in result.timed_out_shards())
        assert any("gamma" in s.label for s in result.failed_shards())
        assert {r.primitive.site.label for r in result.bmoc.reports} == {"alpha"}

    def test_session_memo_never_crosses_budget_boundaries(self, monkeypatch):
        """A group re-solved under a smaller node budget must run (and
        TIMEOUT) rather than reuse the SAT verdict obtained under a larger
        one — max_nodes is part of the memo key."""
        from repro.constraints.session import SolverSession
        from tests.test_constraints_session import recorded_sessions

        sessions = recorded_sessions(monkeypatch, MIXED_COST, "mixed.go")
        sat_calls = [
            (combo, group, outcome)
            for session in sessions
            for combo, group, _, outcome in session.calls
            if outcome.solution is not None and outcome.nodes > 1
        ]
        assert sat_calls
        combo, group, outcome = sat_calls[0]
        fresh = SolverSession()
        full = fresh.solve_group(combo, group, max_nodes=None)
        assert full.solution is not None
        from repro.constraints.solver import TIMEOUT

        starved = fresh.solve_group(combo, group, max_nodes=1)
        assert starved.outcome == TIMEOUT and starved.solution is None
        assert fresh.reuse == 0  # neither call could reuse the other
        again = fresh.solve_group(combo, group, max_nodes=None)
        assert fresh.reuse == 1 and again is full
