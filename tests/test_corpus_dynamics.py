"""Dynamic ground truth for a corpus application: seeded real BMOC bugs
leak on some schedule, while FP-inducing and benign code never does."""

import pytest

from repro.corpus.apps import corpus_app
from repro.runtime.scheduler import explore_schedules


@pytest.fixture(scope="module")
def app():
    return corpus_app("gRPC")


def _drivers(app, predicate):
    return [
        (instance.template, instance.driver)
        for instance in app.instances
        if instance.driver and not instance.driver.startswith("Test") and predicate(instance)
    ]


def test_real_bmoc_drivers_leak(app):
    program = app.program()
    drivers = _drivers(app, lambda i: i.real and i.category.startswith("bmoc"))
    assert drivers
    for template, driver in drivers:
        runs = explore_schedules(program, entry=driver, seeds=25, max_steps=10_000)
        leaks = sum(r.blocked_forever for r in runs)
        assert leaks > 0, f"{template}/{driver} never leaked"


def test_fp_drivers_never_leak(app):
    program = app.program()
    drivers = _drivers(app, lambda i: not i.real and i.category.startswith("bmoc"))
    for template, driver in drivers:
        runs = explore_schedules(program, entry=driver, seeds=25, max_steps=10_000)
        assert not any(r.blocked_forever for r in runs), f"{template}/{driver} leaked"
        assert not any(r.panicked for r in runs), f"{template}/{driver} panicked"


def test_benign_drivers_clean(app):
    program = app.program()
    drivers = _drivers(app, lambda i: i.category == "benign")
    assert drivers
    for template, driver in drivers:
        runs = explore_schedules(program, entry=driver, seeds=10, max_steps=10_000)
        for outcome in runs:
            assert not outcome.blocked_forever, f"{template}/{driver} leaked"
            assert not outcome.panicked, f"{template}/{driver} panicked"
            assert not outcome.hit_step_limit, f"{template}/{driver} diverged"
