"""Tests for the evaluation corpus: specs, templates, app assembly."""

import pytest

from repro.corpus import templates as T
from repro.corpus.apps import build_corpus, corpus_app
from repro.corpus.bugset import build_bug_set
from repro.corpus.snippets import ALL_SNIPPETS, snippet
from repro.corpus.specs import TABLE1, Cell, spec_by_name, totals
from repro.detector.gcatch import run_gcatch
from repro.fixer.dispatcher import GFix
from repro.ssa.builder import build_program


class TestSpecs:
    def test_twenty_one_apps(self):
        assert len(TABLE1) == 21

    def test_paper_totals(self):
        sums = totals()
        assert sums["bmoc_c"] == Cell(147, 46)
        assert sums["bmoc_m"] == Cell(2, 5)
        assert sums["forget_unlock"] == Cell(32, 15)
        assert sums["double_lock"] == Cell(19, 16)
        assert sums["conflict_lock"] == Cell(9, 5)
        assert sums["struct_field"] == Cell(33, 31)
        assert sums["fatal"] == Cell(26, 0)

    def test_fix_totals(self):
        assert sum(s.fix_s1 for s in TABLE1) == 99
        assert sum(s.fix_s2 for s in TABLE1) == 4
        assert sum(s.fix_s3 for s in TABLE1) == 21

    def test_total_reports(self):
        grand = totals()
        real = sum(c.real for c in grand.values())
        fp = sum(c.fp for c in grand.values())
        assert (real, fp) == (268, 118)

    def test_unfixable_distribution(self):
        reasons = {}
        for spec in TABLE1:
            for reason, count in spec.unfixable:
                reasons[reason] = reasons.get(reason, 0) + count
        assert reasons == {
            "parent-blocked": 9,
            "side-effects": 10,
            "recv-value-used": 1,
            "complex-goroutines": 3,
        }

    def test_spec_by_name(self):
        assert spec_by_name("Docker").bmoc_c == Cell(49, 8)
        with pytest.raises(KeyError):
            spec_by_name("NotAnApp")


class TestTemplates:
    @pytest.mark.parametrize(
        "factory",
        [
            T.bmocc_s1_ctx,
            T.bmocc_s1_race,
            T.bmocc_s2_fatal,
            T.bmocc_s3_loop,
            T.bmocc_unfix_parent,
            T.bmocc_unfix_side,
            T.bmocc_unfix_complex,
            T.bmocc_unfix_recvused,
            T.bmocm_real,
            T.fp_nonreadonly,
            T.fp_loop_unroll,
            T.fp_chan_through_chan,
            T.fp_slice_store,
            T.fp_interface,
            T.fp_bmocm,
        ],
    )
    def test_bmoc_template_seeds_exactly_one_channel_report(self, factory):
        instance = factory("Tst1")
        program = build_program("package main\n" + instance.code, "tpl.go")
        result = run_gcatch(program)
        channels = {id(r.primitive) for r in result.bmoc.reports}
        assert len(channels) == 1
        got = (
            "bmoc-mutex"
            if any(r.category == "bmoc-mutex" for r in result.bmoc.reports)
            else "bmoc-chan"
        )
        assert got == instance.category
        assert not result.traditional

    @pytest.mark.parametrize("factory", list(T.TRADITIONAL_REAL.values()))
    def test_traditional_real_templates(self, factory):
        instance = factory("Tst2")
        program = build_program("package main\n" + instance.code, "tpl.go")
        result = run_gcatch(program)
        counts = {c: len(r) for c, r in result.by_category().items() if r}
        assert counts == {instance.category: 1}

    @pytest.mark.parametrize("factory", list(T.TRADITIONAL_FP.values()))
    def test_traditional_fp_templates(self, factory):
        instance = factory("Tst3")
        program = build_program("package main\n" + instance.code, "tpl.go")
        result = run_gcatch(program)
        counts = {c: len(r) for c, r in result.by_category().items() if r}
        assert counts == {instance.category: 1}

    @pytest.mark.parametrize("factory", T.BENIGN_TEMPLATES)
    def test_benign_templates_silent(self, factory):
        instance = factory("Tst4")
        program = build_program("package main\n" + instance.code, "tpl.go")
        result = run_gcatch(program)
        assert result.all_reports() == []

    def test_fixable_templates_fix_with_expected_strategy(self):
        for strategy, factories in T.REAL_BMOCC_BY_STRATEGY.items():
            for factory in factories:
                instance = factory("Tst5")
                source = "package main\n" + instance.code
                program = build_program(source, "tpl.go")
                result = run_gcatch(program)
                gfix = GFix(program, source)
                fix = gfix.fix(result.bmoc.bmoc_channel_bugs()[0])
                assert fix.strategy == strategy, instance.template

    def test_unfixable_templates_reject_with_expected_reason(self):
        for reason, factory in T.UNFIXABLE_BY_REASON.items():
            instance = factory("Tst6")
            source = "package main\n" + instance.code
            program = build_program(source, "tpl.go")
            result = run_gcatch(program)
            gfix = GFix(program, source)
            fix = gfix.fix(result.bmoc.bmoc_channel_bugs()[0])
            assert not fix.fixed
            assert fix.reason == reason, instance.template


class TestApps:
    def test_corpus_builds_21_apps(self):
        corpus = build_corpus()
        assert len(corpus) == 21
        assert [app.name for app in corpus] == [spec.name for spec in TABLE1]

    def test_every_app_parses(self):
        for app in build_corpus():
            program = app.program()
            assert "main" in program.functions

    def test_instance_count_matches_spec(self):
        app = corpus_app("Docker")
        bmocc_real = app.instances_of("bmoc-chan", real=True)
        assert len(bmocc_real) == app.spec.bmoc_c.real
        bmocc_fp = app.instances_of("bmoc-chan", real=False)
        assert len(bmocc_fp) == app.spec.bmoc_c.fp

    def test_marker_lookup(self):
        app = corpus_app("bbolt")
        instance = app.instances[0]
        assert app.instance_for_function(f"someFunc{instance.uid}") is instance

    def test_marker_lookup_prefers_longest(self):
        app = corpus_app("Go")  # has uids Go1 ... Go1xx
        long_uid = next(i for i in app.instances if i.uid == "Go12")
        assert app.instance_for_function("driveExecGo12") is long_uid

    def test_empty_apps_have_only_benign_code(self):
        app = corpus_app("Gin")
        result = run_gcatch(app.program())
        assert result.all_reports() == []

    def test_size_weights_reflected(self):
        kube = corpus_app("Kubernetes")
        gin = corpus_app("Gin")
        assert kube.loc() > gin.loc()


class TestBugSet:
    def test_49_cases_33_detectable(self):
        cases = build_bug_set()
        assert len(cases) == 49
        assert sum(1 for c in cases if c.detectable) == 33

    def test_miss_reasons_present(self):
        reasons = {c.miss_reason for c in build_bug_set() if not c.detectable}
        assert reasons == {
            "critical-section-above-lca",
            "needs-dynamic-value",
            "unmodeled-primitive",
            "nil-channel-dataflow",
        }

    def test_all_cases_parse(self):
        for case in build_bug_set():
            program = build_program(case.source, case.case_id + ".go")
            assert program.functions


class TestSnippets:
    def test_three_snippets(self):
        assert len(ALL_SNIPPETS) == 3

    def test_lookup(self):
        assert snippet("docker_exec").figure == "Figure 1"
        with pytest.raises(KeyError):
            snippet("nope")

    def test_buggy_line_marker_present(self):
        for sn in ALL_SNIPPETS:
            assert sn.buggy_line_marker in sn.source
