"""Tests for repro.engine: sharding, budgets, caching, and the CLI surface.

The cross-cutting guarantees (full-corpus parity, the cache invalidation
matrix, crash-freedom fuzzing) live in their own modules; this one covers
the engine's moving parts directly.
"""

from __future__ import annotations

import pytest

from repro.cli import EXIT_TIMEOUT, main
from repro.detector.bmoc import AnalysisBudget, BudgetExceeded
from repro.detector.gcatch import resolve_jobs, run_gcatch
from repro.engine import (
    EngineConfig,
    ResultCache,
    TRADITIONAL_CHECKERS,
    run_engine,
)
from repro.obs import Collector
from repro.report.table import TIMEOUT_MARKER, render_bug_costs
from tests.conftest import build

TWO_BUGS = """
func leakOne() {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	println("no receive")
}

func leakTwo() {
	done := make(chan int)
	go func() {
		done <- 2
	}()
	println("no receive either")
}

func fine() {
	ok := make(chan int, 1)
	ok <- 3
	<-ok
}
"""


def report_keys(result):
    return sorted(
        (
            r.category,
            tuple(r.lines),
            tuple(sorted((op.kind, op.prim_label, op.line) for op in r.blocked_ops)),
            r.solver_outcome,
        )
        for r in result.all_reports()
    )


class TestSharding:
    def test_engine_matches_serial_reports(self):
        program = build(TWO_BUGS)
        serial = run_gcatch(program)
        for jobs in (1, 2, 4):
            parallel = run_gcatch(program, jobs=jobs)
            assert report_keys(parallel) == report_keys(serial)

    def test_report_order_is_deterministic_across_runs(self):
        program = build(TWO_BUGS)
        first = run_gcatch(program, jobs=4)
        for _ in range(3):
            again = run_gcatch(program, jobs=4)
            assert [r.identity() for r in again.all_reports()] == [
                r.identity() for r in first.all_reports()
            ]

    def test_shard_records_cover_primitives_and_checkers(self):
        program = build(TWO_BUGS)
        result = run_gcatch(program, jobs=2)
        kinds = [s.kind for s in result.shards]
        assert kinds.count("bmoc") == 3  # three channels
        assert [s.label for s in result.shards if s.kind == "traditional"] == list(
            TRADITIONAL_CHECKERS
        )

    def test_serial_path_has_no_shards(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        result = run_gcatch(build(TWO_BUGS))
        assert result.shards is None

    def test_engine_stats_match_serial_effort(self):
        program = build(TWO_BUGS)
        serial = run_gcatch(program).bmoc.stats
        engine = run_gcatch(program, jobs=4).bmoc.stats
        assert engine.channels_analyzed == serial.channels_analyzed
        assert engine.solver_calls == serial.solver_calls
        assert engine.groups_checked == serial.groups_checked
        assert engine.sat_results == serial.sat_results

    def test_process_backend_parity(self):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork on this platform")
        program = build(TWO_BUGS)
        serial = run_gcatch(program)
        forked = run_gcatch(program, jobs=2, backend="process")
        assert report_keys(forked) == report_keys(serial)

    def test_jobs_resolution_prefers_explicit_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(2) == 2
        assert resolve_jobs(None) == 8
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert resolve_jobs(None) == 1
        monkeypatch.delenv("REPRO_JOBS")
        assert resolve_jobs(None) == 1

    def test_engine_threads_observability(self):
        collector = Collector("engine")
        program = build(TWO_BUGS)
        result = run_gcatch(program, jobs=2, collector=collector)
        assert result.trace is collector
        totals = collector.stage_totals()
        assert totals["engine-shard"][0] == len(result.shards)
        assert collector.counters["engine.shards"] == len(result.shards)
        # the Figure 2 stages still show up in the merged trace
        for stage in ("callgraph", "alias", "path-enum", "solve"):
            assert stage in totals


class TestBudgets:
    def test_wall_budget_times_out_gracefully(self):
        program = build(TWO_BUGS)
        result = run_gcatch(program, jobs=1, budget_wall_seconds=1e-9)
        timeouts = result.timed_out_shards()
        assert timeouts and all(s.kind == "bmoc" for s in timeouts)
        assert result.has_timeouts()
        assert result.bmoc.stats.analysis_timeouts == len(timeouts)
        # traditional checkers still ran: degradation, not abortion
        assert [s for s in result.shards if s.kind == "traditional"]

    def test_node_budget_times_out_and_counts(self):
        program = build(TWO_BUGS)
        collector = Collector("budget")
        result = run_gcatch(
            program, jobs=2, budget_solver_nodes=1, collector=collector
        )
        assert result.timed_out_shards()
        assert collector.counters.get("engine.timeout", 0) >= 1

    def test_generous_budget_changes_nothing(self):
        program = build(TWO_BUGS)
        serial = run_gcatch(program)
        budgeted = run_gcatch(program, jobs=2, budget_wall_seconds=60.0)
        assert report_keys(budgeted) == report_keys(serial)
        assert not budgeted.timed_out_shards()

    def test_budget_object_semantics(self):
        budget = AnalysisBudget(solver_nodes=10)
        budget.check()
        assert budget.per_solve_nodes() == 10
        budget.charge(10)
        with pytest.raises(BudgetExceeded):
            budget.check()
        capped = AnalysisBudget(solver_nodes=100, max_nodes_per_solve=7)
        assert capped.per_solve_nodes() == 7


class TestWarmCache:
    def test_warm_rerun_skips_at_least_90_percent_of_solver_calls(self):
        """The ISSUE acceptance criterion, verified via obs counters."""
        program = build(TWO_BUGS)
        cache = ResultCache()
        cold = Collector("cold")
        warm = Collector("warm")
        first = run_gcatch(program, jobs=2, cache=cache, collector=cold)
        second = run_gcatch(program, jobs=2, cache=cache, collector=warm)
        cold_calls = cold.counters["solver.calls"]
        warm_calls = warm.counters.get("solver.calls", 0)
        assert cold_calls > 0
        assert warm_calls <= 0.1 * cold_calls
        assert warm.counters["cache.hit"] == len(second.shards)
        assert warm.counters["cache.skipped-solver-calls"] == cold_calls
        assert report_keys(second) == report_keys(first)

    def test_cached_stats_preserve_effort_accounting(self):
        program = build(TWO_BUGS)
        cache = ResultCache()
        first = run_gcatch(program, jobs=1, cache=cache)
        second = run_gcatch(program, jobs=1, cache=cache)
        assert second.bmoc.stats.solver_calls == first.bmoc.stats.solver_calls
        assert all(s.outcome == "cached" for s in second.shards)

    def test_disk_cache_layout_and_cross_instance_reload(self, tmp_path):
        program = build(TWO_BUGS)
        first = run_gcatch(program, jobs=1, cache=ResultCache(str(tmp_path)))
        entries = list(tmp_path.glob("objects/*/*.pkl"))
        assert len(entries) == len(first.shards)
        # every entry sits under objects/<first two hex chars>/<sha256>.pkl
        for entry in entries:
            assert entry.parent.name == entry.stem[:2]
            assert len(entry.stem) == 64
        # a brand-new cache instance (fresh process, conceptually) hits disk
        fresh = ResultCache(str(tmp_path))
        warm = Collector("disk-warm")
        second = run_gcatch(program, jobs=1, cache=fresh, collector=warm)
        assert warm.counters["cache.hit"] == len(first.shards)
        assert report_keys(second) == report_keys(first)

    def test_corrupt_disk_entry_is_a_miss_not_an_error(self, tmp_path):
        program = build(TWO_BUGS)
        run_gcatch(program, jobs=1, cache=ResultCache(str(tmp_path)))
        for entry in tmp_path.glob("objects/*/*.pkl"):
            entry.write_bytes(b"not a pickle")
        fresh = ResultCache(str(tmp_path))
        result = run_gcatch(program, jobs=1, cache=fresh)
        assert report_keys(result) == report_keys(run_gcatch(program))

    def test_timed_out_shards_are_not_cached(self):
        program = build(TWO_BUGS)
        cache = ResultCache()
        run_gcatch(program, jobs=1, cache=cache, budget_wall_seconds=1e-9)
        retry = run_gcatch(program, jobs=1, cache=cache)
        assert report_keys(retry) == report_keys(run_gcatch(program))


class TestTimeoutSurfacing:
    def test_render_bug_costs_marks_timeouts(self):
        program = build(TWO_BUGS)
        result = run_gcatch(program, jobs=1, budget_wall_seconds=1e-9)
        table = render_bug_costs(
            result.all_reports(), timeouts=result.timed_out_shards()
        )
        assert TIMEOUT_MARKER in table
        assert "(budget)" in table
        clean = render_bug_costs(run_gcatch(program).all_reports())
        assert TIMEOUT_MARKER not in clean

    def test_cli_fail_on_timeout_exit_code(self, tmp_path, capsys):
        source = "package main\n" + TWO_BUGS
        target = tmp_path / "bugs.go"
        target.write_text(source)
        code = main(
            [
                "detect",
                str(target),
                "--jobs",
                "2",
                "--budget-seconds",
                "0.000000001",
                "--fail-on-timeout",
            ]
        )
        assert code == EXIT_TIMEOUT
        out = capsys.readouterr().out
        assert "TIMEOUT" in out
        # without the flag the exit code reports bugs/no-bugs as usual
        code = main(["detect", str(target), "--jobs", "2"])
        assert code in (0, 1)

    def test_cli_cache_dir_round_trip(self, tmp_path, capsys):
        source = "package main\n" + TWO_BUGS
        target = tmp_path / "bugs.go"
        target.write_text(source)
        cache_dir = tmp_path / "cache"
        first = main(["detect", str(target), "--cache-dir", str(cache_dir)])
        out_first = capsys.readouterr().out
        assert list(cache_dir.glob("objects/*/*.pkl"))
        second = main(["detect", str(target), "--cache-dir", str(cache_dir)])
        out_second = capsys.readouterr().out
        assert first == second
        assert out_first.splitlines()[0] == out_second.splitlines()[0]


class TestEngineDirect:
    def test_run_engine_with_config(self):
        program = build(TWO_BUGS)
        result = run_engine(program, config=EngineConfig(jobs=2))
        assert report_keys(result) == report_keys(run_gcatch(program))

    def test_unknown_backend_falls_back_to_thread(self):
        program = build(TWO_BUGS)
        result = run_gcatch(program, jobs=2, backend="thread")
        assert report_keys(result) == report_keys(run_gcatch(program))

    def test_engine_handles_program_without_channels(self):
        program = build("func pure() int {\n\treturn 41 + 1\n}\n")
        result = run_gcatch(program, jobs=4)
        assert result.all_reports() == []
        assert [s.kind for s in result.shards] == ["traditional"] * 5
