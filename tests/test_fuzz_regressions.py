"""The checked-in fuzz findings (repro.corpus.regressions).

Two layers per regression:

* a *lock* — today's triage must reproduce the recorded classification
  byte-for-byte from both the minimized recipe and the original
  ``(campaign_seed, index)`` provenance, so the detector gap cannot
  drift silently;
* a strict ``xfail`` on the *desired* behaviour (the oracles agreeing).
  Fixing the underlying BMOC gap flips the xfail to XPASS, fails the
  run, and forces the fixed case to be retired from the corpus — the
  regress half of the seed→minimize→regress workflow.
"""

from __future__ import annotations

import pytest

from repro.corpus.regressions import FUZZ_REGRESSIONS, REGRESSIONS_BY_NAME
from repro.fuzz import BUCKET_UNEXPLAINED, generate_program, triage_program
from repro.golang.parser import parse_file

CASES = sorted(REGRESSIONS_BY_NAME)


def test_corpus_is_nonempty_and_uniquely_named():
    assert FUZZ_REGRESSIONS
    assert len(REGRESSIONS_BY_NAME) == len(FUZZ_REGRESSIONS)


@pytest.mark.parametrize("name", CASES)
def test_minimized_recipe_renders_and_parses(name):
    case = REGRESSIONS_BY_NAME[name]
    program = case.program()
    parse_file(program.source, program.name + ".go")
    assert len(program.motifs) == 1  # checked-in recipes are minimal


@pytest.mark.parametrize("name", CASES)
def test_lock_current_detector_gap(name):
    """Today's (wrong) triage, pinned: still unexplained, same class."""
    case = REGRESSIONS_BY_NAME[name]
    triage = case.triage()
    assert triage.bucket == BUCKET_UNEXPLAINED
    assert triage.classification == case.classification


@pytest.mark.parametrize("name", CASES)
def test_original_seed_still_reproduces(name):
    """The unminimized ``(campaign_seed, index)`` provenance replays to
    the same finding class — the seed recorded with the case is real."""
    case = REGRESSIONS_BY_NAME[name]
    triage = triage_program(generate_program(case.campaign_seed, case.index))
    assert triage.bucket == BUCKET_UNEXPLAINED
    assert triage.classification == case.classification


@pytest.mark.parametrize("name", CASES)
@pytest.mark.xfail(
    strict=True,
    reason="open detector gap — fixing BMOC flips this to XPASS, "
    "which retires the case from repro.corpus.regressions",
)
def test_desired_oracle_agreement(name):
    case = REGRESSIONS_BY_NAME[name]
    assert case.triage().bucket != BUCKET_UNEXPLAINED
