"""The checked-in fuzz findings (repro.corpus.regressions).

Two layers per *open* regression:

* a *lock* — today's triage must reproduce the recorded classification
  byte-for-byte from both the minimized recipe and the original
  ``(campaign_seed, index)`` provenance, so the detector gap cannot
  drift silently;
* a strict ``xfail`` on the *desired* behaviour (the oracles agreeing).
  Fixing the underlying BMOC gap flips the xfail to XPASS, fails the
  run, and forces the fixed case to be retired from the corpus — the
  regress half of the seed→minimize→regress workflow.

*Closed* regressions flip that contract: the oracles must now agree on
the very programs that once split them. The corpus is currently fully
closed — the two ``buffer-grow`` false negatives were retired by the
repeatable-send blocking rule, and the ``drop-close`` false positive by
the dead-select-arm pruning rule — so the open-case tests below are
parameterized over an empty set; they re-arm automatically when the
next hunt checks in a new gap.
"""

from __future__ import annotations

import pytest

from repro.corpus.regressions import (
    CLOSED_BY_NAME,
    CLOSED_REGRESSIONS,
    FUZZ_REGRESSIONS,
    REGRESSIONS_BY_NAME,
)
from repro.fuzz import BUCKET_AGREE, BUCKET_UNEXPLAINED, generate_program, triage_program
from repro.golang.parser import parse_file

CASES = sorted(REGRESSIONS_BY_NAME)
CLOSED_CASES = sorted(CLOSED_BY_NAME)


def test_corpus_is_consistent_and_uniquely_named():
    assert len(REGRESSIONS_BY_NAME) == len(FUZZ_REGRESSIONS)
    assert CLOSED_REGRESSIONS
    assert len(CLOSED_BY_NAME) == len(CLOSED_REGRESSIONS)
    assert not set(REGRESSIONS_BY_NAME) & set(CLOSED_BY_NAME)


@pytest.mark.parametrize("name", CASES + CLOSED_CASES)
def test_minimized_recipe_renders_and_parses(name):
    case = REGRESSIONS_BY_NAME.get(name) or CLOSED_BY_NAME[name].case
    program = case.program()
    parse_file(program.source, program.name + ".go")
    assert len(program.motifs) == 1  # checked-in recipes are minimal


@pytest.mark.parametrize("name", CASES)
def test_lock_current_detector_gap(name):
    """Today's (wrong) triage, pinned: still unexplained, same class."""
    case = REGRESSIONS_BY_NAME[name]
    triage = case.triage()
    assert triage.bucket == BUCKET_UNEXPLAINED
    assert triage.classification == case.classification


@pytest.mark.parametrize("name", CASES)
def test_original_seed_still_reproduces(name):
    """The unminimized ``(campaign_seed, index)`` provenance replays to
    the same finding class — the seed recorded with the case is real."""
    case = REGRESSIONS_BY_NAME[name]
    triage = triage_program(generate_program(case.campaign_seed, case.index))
    assert triage.bucket == BUCKET_UNEXPLAINED
    assert triage.classification == case.classification


@pytest.mark.parametrize("name", CASES)
@pytest.mark.xfail(
    strict=True,
    reason="open detector gap — fixing BMOC flips this to XPASS, "
    "which retires the case from repro.corpus.regressions",
)
def test_desired_oracle_agreement(name):
    case = REGRESSIONS_BY_NAME[name]
    assert case.triage().bucket != BUCKET_UNEXPLAINED


@pytest.mark.parametrize("name", CLOSED_CASES)
def test_closed_gap_stays_closed(name):
    """A retired gap's minimized recipe now triages to agreement, with
    the reconciliation the closing rule predicts (``agree-bug`` for the
    fixed false negatives, ``agree-clean`` for the fixed false
    positive)."""
    closed = CLOSED_BY_NAME[name]
    triage = closed.case.triage()
    assert triage.bucket == closed.resolved_bucket == BUCKET_AGREE
    assert triage.classification == closed.resolved_classification
    assert triage.classification != closed.case.classification  # the old verdict


@pytest.mark.parametrize("name", CLOSED_CASES)
def test_closed_gap_original_seed_agrees(name):
    """The raw campaign program behind a retired case agrees too — the
    fix holds on the unminimized program, not just the shrunk recipe."""
    closed = CLOSED_BY_NAME[name]
    triage = triage_program(
        generate_program(closed.case.campaign_seed, closed.case.index)
    )
    assert triage.bucket == BUCKET_AGREE
    assert triage.classification == closed.resolved_classification
