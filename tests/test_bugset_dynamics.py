"""Ground-truth the coverage bug set: every one of the 49 cases misbehaves
dynamically — including the 16 the static detector misses by design."""

import pytest

from repro.corpus.bugset import build_bug_set
from repro.runtime.scheduler import explore_schedules
from repro.ssa.builder import build_program

CASES = build_bug_set()


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.case_id)
def test_case_misbehaves_on_some_schedule(case):
    program = build_program(case.source, case.case_id + ".go")
    assert case.driver is not None
    runs = explore_schedules(
        program, entry=case.driver, seeds=20, max_steps=4000
    )
    misbehaved = any(
        r.blocked_forever or r.hit_step_limit or r.panicked for r in runs
    )
    assert misbehaved, f"{case.case_id} never misbehaved in 20 schedules"


def test_missed_cases_are_real_bugs_too():
    """The four static blind spots are still dynamically confirmed bugs —
    that is what makes them *misses* rather than non-bugs."""
    missed = [c for c in CASES if not c.detectable]
    assert len(missed) == 16
    for case in missed:
        program = build_program(case.source, case.case_id + ".go")
        runs = explore_schedules(program, entry=case.driver, seeds=20, max_steps=4000)
        assert any(
            r.blocked_forever or r.hit_step_limit or r.panicked for r in runs
        ), case.case_id
