"""Tests for the weighted-fair scheduler and admission control.

The multi-tenant daemon's contract under test:

* deficit round-robin interleaves tenants by weight (a weight-2 tenant
  gets two turns per round) and strict priority classes drain first;
* one tenant's requests never run concurrently, different tenants' do;
* shutdown drains: in-flight requests complete, still-queued requests
  are answered with a structured SHUTTING_DOWN error immediately;
* admission sheds with structured OVERLOADED/QUOTA_EXCEEDED (plus a
  retry_after hint) instead of queueing — and a request that is both
  sheddable and past its deadline reports DEADLINE_EXCEEDED (the
  deadline wins), under one worker and under four;
* a flooding tenant cannot starve a quiet one: the quiet tenant's queue
  wait stays bounded by one round-robin round.
"""

import threading
import time

import pytest

from repro.resilience.faultinject import injected
from repro.service import AnalysisService, FairScheduler, Request
from repro.service.admission import (
    ADMISSION_EXEMPT,
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)
from repro.service.protocol import (
    DEADLINE_EXCEEDED,
    INVALID_PARAMS,
    OVERLOADED,
    QUOTA_EXCEEDED,
    SHUTTING_DOWN,
)

BUGGY = """package main

func main() {
\tch := make(chan int)
\tgo func() {
\t\tch <- 1
\t}()
}
"""


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "buggy.go"
    path.write_text(BUGGY)
    return str(path)


def ok(response):
    assert "error" not in response, response
    return response["result"]


def plugged_scheduler(order, release, workers=1):
    """A scheduler whose first request blocks until ``release`` is set, so
    tests can build a backlog and then observe the exact drain order."""

    def handler(request):
        if request.tenant == "plug":
            release.wait(timeout=5)
        order.append((request.tenant, request.id))
        return {"id": request.id, "result": {}}

    scheduler = FairScheduler(handler, workers=workers)
    scheduler.start()
    return scheduler


# -- fair scheduling --------------------------------------------------------


class TestFairScheduler:
    def test_weighted_deficit_round_robin(self):
        """A weight-2 tenant is served twice per round: a,a,b,a,a,b."""
        order, release = [], threading.Event()
        scheduler = plugged_scheduler(order, release)
        scheduler.set_weight("a", 2.0)
        plug = scheduler.submit(Request(id="plug", method="ping", tenant="plug"))
        futures = [
            scheduler.submit(Request(id=f"a{i}", method="ping", tenant="a"))
            for i in range(6)
        ] + [
            scheduler.submit(Request(id=f"b{i}", method="ping", tenant="b"))
            for i in range(3)
        ]
        release.set()
        plug.result(timeout=5)
        for future in futures:
            future.result(timeout=5)
        scheduler.stop()
        drained = [tenant for tenant, _ in order if tenant != "plug"]
        assert drained == ["a", "a", "b", "a", "a", "b", "a", "a", "b"]

    def test_equal_weights_alternate(self):
        order, release = [], threading.Event()
        scheduler = plugged_scheduler(order, release)
        plug = scheduler.submit(Request(id="plug", method="ping", tenant="plug"))
        futures = [
            scheduler.submit(Request(id=i, method="ping", tenant=t))
            for i, t in enumerate(["a"] * 3 + ["b"] * 3)
        ]
        release.set()
        plug.result(timeout=5)
        for future in futures:
            future.result(timeout=5)
        scheduler.stop()
        drained = [tenant for tenant, _ in order if tenant != "plug"]
        assert drained == ["a", "b", "a", "b", "a", "b"]

    def test_priority_classes_drain_first(self):
        """Strict classes: every queued high runs before any normal, every
        normal before any low — regardless of arrival order."""
        order, release = [], threading.Event()
        scheduler = plugged_scheduler(order, release)
        plug = scheduler.submit(Request(id="plug", method="ping", tenant="plug"))
        futures = [
            scheduler.submit(
                Request(id=f"{prio}{i}", method="ping", tenant="a", priority=prio)
            )
            for i, prio in enumerate(["low", "normal", "high", "low", "high"])
        ]
        release.set()
        plug.result(timeout=5)
        for future in futures:
            future.result(timeout=5)
        scheduler.stop()
        drained = [rid for tenant, rid in order if tenant != "plug"]
        assert drained == ["high2", "high4", "normal1", "low0", "low3"]

    def test_flooding_tenant_cannot_starve_quiet_one(self):
        """DRR bounds a quiet tenant's wait to one round: its request is
        served right after the flooder's next one, not after the backlog."""
        order, release = [], threading.Event()
        scheduler = plugged_scheduler(order, release)
        plug = scheduler.submit(Request(id="plug", method="ping", tenant="plug"))
        noisy = [
            scheduler.submit(Request(id=f"n{i}", method="ping", tenant="noisy"))
            for i in range(20)
        ]
        quiet = scheduler.submit(Request(id="q", method="ping", tenant="quiet"))
        release.set()
        plug.result(timeout=5)
        quiet.result(timeout=5)
        for future in noisy:
            future.result(timeout=5)
        scheduler.stop()
        drained = [rid for tenant, rid in order if tenant != "plug"]
        # one noisy request may legitimately run first (it is ahead in the
        # round); the 20-deep backlog may not
        assert drained.index("q") <= 1

    def test_cross_tenant_requests_run_concurrently(self):
        """Two tenants must be in flight at once under workers=2: each
        handler waits at a barrier only both together can pass."""
        barrier = threading.Barrier(2, timeout=5)

        def handler(request):
            barrier.wait()
            return {"id": request.id, "result": {}}

        scheduler = FairScheduler(handler, workers=2)
        scheduler.start()
        futures = [
            scheduler.submit(Request(id=t, method="ping", tenant=t))
            for t in ("a", "b")
        ]
        for future in futures:
            assert "result" in future.result(timeout=5)
        scheduler.stop()

    def test_same_tenant_requests_never_run_concurrently(self):
        active, seen_overlap = set(), []
        lock = threading.Lock()

        def handler(request):
            with lock:
                if request.tenant in active:
                    seen_overlap.append(request.id)
                active.add(request.tenant)
            time.sleep(0.005)
            with lock:
                active.discard(request.tenant)
            return {"id": request.id, "result": {}}

        scheduler = FairScheduler(handler, workers=4)
        scheduler.start()
        futures = [
            scheduler.submit(Request(id=f"{t}{i}", method="ping", tenant=t))
            for i in range(8)
            for t in ("a", "b", "c")
        ]
        for future in futures:
            future.result(timeout=10)
        scheduler.stop()
        assert seen_overlap == []

    def test_stop_answers_queued_with_shutting_down_immediately(self):
        """The hardened drain semantics: the in-flight request completes,
        still-queued requests get SHUTTING_DOWN *without running* — even
        though the worker frees up afterwards."""
        started, release = threading.Event(), threading.Event()
        ran = []
        rejected = []

        def handler(request):
            started.set()
            release.wait(timeout=5)
            ran.append(request.id)
            return {"id": request.id, "result": {}}

        scheduler = FairScheduler(
            handler, workers=1, on_reject=lambda req, resp: rejected.append(req.id)
        )
        scheduler.start()
        running = scheduler.submit(Request(id="running", method="ping"))
        queued = [
            scheduler.submit(Request(id=f"q{i}", method="ping")) for i in range(3)
        ]
        started.wait(timeout=5)
        stopper = threading.Thread(target=scheduler.stop)
        stopper.start()
        # the queued futures resolve before the worker is even free
        for i, future in enumerate(queued):
            assert future.result(timeout=5)["error"]["code"] == SHUTTING_DOWN
        release.set()
        stopper.join(timeout=5)
        assert "result" in running.result(timeout=5)
        assert ran == ["running"]
        assert sorted(rejected) == ["q0", "q1", "q2"]


# -- admission units --------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_reject_with_retry_after(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: clock[0])
        assert bucket.take() is None
        assert bucket.take() is None
        retry = bucket.take()
        assert retry is not None and retry == pytest.approx(0.5)

    def test_refills_over_time(self):
        clock = [0.0]
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=lambda: clock[0])
        assert bucket.take() is None
        assert bucket.take() is not None
        clock[0] = 1.5
        assert bucket.take() is None

    def test_zero_rate_admits_only_burst(self):
        clock = [0.0]
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=lambda: clock[0])
        assert bucket.take() is None
        assert bucket.take() == 60.0


class TestAdmissionController:
    def controller(self, **kwargs):
        return AdmissionController(AdmissionConfig(**kwargs))

    def test_admits_under_limits(self):
        control = self.controller(max_queue=4)
        request = Request(id=1, method="detect")
        assert control.decide(request, global_depth=3, tenant_depth=3) is None

    def test_global_depth_sheds_overloaded(self):
        control = self.controller(max_queue=4)
        rejection = control.decide(
            Request(id=1, method="detect"), global_depth=4, tenant_depth=0
        )
        assert rejection is not None
        assert rejection.code == OVERLOADED
        assert rejection.retry_after > 0
        assert control.sheds == 1

    def test_tenant_depth_sheds_before_quota(self):
        control = self.controller(tenant_max_queue=2, quota_rate=100.0)
        rejection = control.decide(
            Request(id=1, method="detect"), global_depth=5, tenant_depth=2
        )
        assert rejection.code == OVERLOADED
        assert "tenant" in rejection.message

    def test_quota_sheds_per_tenant(self):
        control = self.controller(quota_rate=1e-9, quota_burst=1.0)
        a1 = Request(id=1, method="detect", tenant="a")
        assert control.decide(a1, 0, 0) is None
        rejection = control.decide(a1, 0, 0)
        assert rejection.code == QUOTA_EXCEEDED
        # quota buckets are per tenant: b still has its burst
        assert control.decide(Request(id=2, method="detect", tenant="b"), 0, 0) is None

    def test_degraded_sheds_low_priority_first(self):
        control = self.controller()
        low = Request(id=1, method="detect", priority="low")
        normal = Request(id=2, method="detect")
        assert control.decide(low, 0, 0, degraded=True).code == OVERLOADED
        assert control.decide(normal, 0, 0, degraded=True) is None

    def test_operational_methods_exempt(self):
        control = self.controller(max_queue=0)
        for method in sorted(ADMISSION_EXEMPT):
            request = Request(id=1, method=method)
            assert control.decide(request, global_depth=99, tenant_depth=99) is None

    def test_ewma_prices_retry_after(self):
        control = self.controller(max_queue=0)
        control.observe_duration(2.0)
        rejection = control.decide(Request(id=1, method="detect"), 3, 0)
        assert rejection.retry_after == pytest.approx((3 + 1) * 2.0)


# -- daemon-level overload behavior -----------------------------------------


def fast_detect(gate=None, started=None):
    """A deterministic stand-in for the real detect handler."""

    def handler(params, ctx):
        if started is not None:
            started.set()
        if gate is not None:
            gate.wait(timeout=5)
        return {"generation": ctx.tenant.state.generation, "reports": []}

    return handler


class TestDaemonAdmission:
    def test_max_queue_sheds_overloaded(self, buggy_file):
        gate, started = threading.Event(), threading.Event()
        service = AnalysisService(buggy_file, workers=1, max_queue=2).start()
        try:
            service._method_detect = fast_detect(gate, started)
            running = service.queue.submit(Request(id="r", method="detect"))
            started.wait(timeout=5)  # in flight, not queued
            queued = [
                service.queue.submit(Request(id=f"q{i}", method="detect"))
                for i in range(2)
            ]
            shed = service.queue.submit(Request(id="shed", method="detect"))
            response = shed.result(timeout=5)
            assert response["error"]["code"] == OVERLOADED
            assert response["error"]["retry_after"] >= 0
            # an overloaded daemon stays observable: ping is exempt
            assert "result" in service.call("ping")
            gate.set()
            assert "result" in running.result(timeout=5)
            for future in queued:
                assert "result" in future.result(timeout=5)
            assert service.collector.counters.get("service.shed") == 1
            assert service.collector.counters.get("service.shed.overloaded") == 1
        finally:
            gate.set()
            service.stop()

    def test_tenant_max_queue_is_per_tenant(self, buggy_file, tmp_path):
        other = tmp_path / "other.go"
        other.write_text(BUGGY)
        gate, started = threading.Event(), threading.Event()
        service = AnalysisService(buggy_file, workers=1, tenant_max_queue=1).start()
        try:
            ok(service.call("register", {"tenant": "b", "path": str(other)}))
            service._method_detect = fast_detect(gate, started)
            running = service.queue.submit(Request(id="r", method="detect"))
            started.wait(timeout=5)  # in flight, not queued
            queued = service.queue.submit(Request(id="q", method="detect"))
            shed = service.queue.submit(Request(id="s", method="detect"))
            response = shed.result(timeout=5)
            assert response["error"]["code"] == OVERLOADED
            # the default tenant's full lane does not block tenant b
            admitted = service.queue.submit(
                Request(id="b1", method="detect", tenant="b")
            )
            gate.set()
            for future in (running, queued, admitted):
                assert "result" in future.result(timeout=5)
            assert service.tenants.get("default").shed == 1
            assert service.tenants.get("b").shed == 0
        finally:
            gate.set()
            service.stop()

    def test_quota_sheds_with_retry_after(self, buggy_file):
        service = AnalysisService(
            buggy_file, workers=1, quota=1e-9, quota_burst=2.0
        ).start()
        try:
            service._method_detect = fast_detect()
            assert "result" in service.call("detect")
            assert "result" in service.call("detect")
            response = service.call("detect")
            assert response["error"]["code"] == QUOTA_EXCEEDED
            assert response["error"]["retry_after"] > 0
            assert service.collector.counters.get("service.shed.quota") == 1
        finally:
            service.stop()

    def test_degraded_health_sheds_low_priority_first(self, buggy_file):
        service = AnalysisService(buggy_file, workers=1).start()
        try:
            service._method_detect = fast_detect()
            with injected("service-request@ping:raise:times=1"):
                crashed = service.call("ping")
            assert crashed["error"]["incident"]["site"] == "service-request"
            low = service.call("detect", priority="low")
            assert low["error"]["code"] == OVERLOADED
            assert "low-priority" in low["error"]["message"]
            assert "result" in service.call("detect", priority="normal")
        finally:
            service.stop()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_deadline_wins_over_shed(self, buggy_file, workers):
        """A request that is both over-quota and past its deadline must
        deterministically report DEADLINE_EXCEEDED, serial or concurrent."""
        service = AnalysisService(
            buggy_file, workers=workers, quota=1e-9, quota_burst=1.0
        ).start()
        try:
            service._method_detect = fast_detect()
            assert "result" in service.call("detect")  # burns the burst
            over_quota = service.call("detect")
            assert over_quota["error"]["code"] == QUOTA_EXCEEDED
            both = service.call("detect", deadline_seconds=1e-9)
            assert both["error"]["code"] == DEADLINE_EXCEEDED
        finally:
            service.stop()

    def test_unknown_tenant_rejected_at_admission(self, buggy_file):
        service = AnalysisService(buggy_file, workers=1).start()
        try:
            response = service.call("detect", tenant="ghost")
            assert response["error"]["code"] == INVALID_PARAMS
            assert "register" in response["error"]["message"]
        finally:
            service.stop()

    def test_shutdown_drain_journals_every_outcome(self, buggy_file, tmp_path):
        """Satellite regression: stop() completes the in-flight request,
        answers queued ones with SHUTTING_DOWN, and journals both."""
        journal_path = tmp_path / "journal.jsonl"
        gate = threading.Event()
        started = threading.Event()
        service = AnalysisService(
            buggy_file, workers=1, journal_path=str(journal_path)
        ).start()
        try:

            def handler(params, ctx):
                started.set()
                gate.wait(timeout=5)
                return {"generation": 1}

            service._method_detect = handler
            running = service.queue.submit(Request(id="r", method="detect"))
            queued = service.queue.submit(Request(id="q", method="detect"))
            started.wait(timeout=5)
            stopper = threading.Thread(target=service.stop)
            stopper.start()
            assert queued.result(timeout=5)["error"]["code"] == SHUTTING_DOWN
            gate.set()
            stopper.join(timeout=5)
            assert "result" in running.result(timeout=5)
        finally:
            gate.set()
            service.stop()
        outcomes = sorted(
            record["outcome"] for record in service.journal.iter_records()
        )
        assert outcomes == ["ok", "shutdown"]

    def test_overload_burst_every_request_answered(self, buggy_file, tmp_path):
        """An in-process soak: a burst far beyond max_queue is fully
        answered — served or structurally shed, nothing hangs, nothing
        crashes, and the journal records every outcome."""
        journal_path = tmp_path / "journal.jsonl"
        extra = tmp_path / "extra.go"
        extra.write_text(BUGGY)
        service = AnalysisService(
            buggy_file,
            workers=2,
            max_queue=4,
            journal_path=str(journal_path),
        ).start()
        try:

            def handler(params, ctx):
                time.sleep(0.002)
                return {"generation": ctx.tenant.state.generation}

            service._method_detect = handler
            for tenant in ("b", "c"):
                ok(service.call("register", {"tenant": tenant, "path": str(extra)}))
            futures = [
                service.queue.submit(
                    Request(id=i, method="detect", tenant=["default", "b", "c"][i % 3])
                )
                for i in range(60)
            ]
            served = shed = 0
            for future in futures:
                response = future.result(timeout=30)
                if "result" in response:
                    served += 1
                else:
                    assert response["error"]["code"] == OVERLOADED
                    shed += 1
            assert served + shed == 60
            assert served > 0 and shed > 0
            assert "result" in service.call("health")
            assert service.call("health")["result"]["health"] == "ok"
        finally:
            service.stop()
        records = [
            r
            for r in service.journal.iter_records()
            if r["method"] == "detect"
        ]
        assert len(records) == 60
        assert sum(1 for r in records if r["outcome"] == "overloaded") == shed
