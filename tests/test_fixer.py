"""Tests for GFix: the dispatcher, the three strategies, and patch safety."""

import pytest

from repro.api import Project
from repro.detector.bmoc import detect_bmoc
from repro.fixer.dispatcher import GFix
from repro.fixer.patch import LineEdit, Patch, indent_of, line_text
from tests.conftest import build


def fix_first(source: str, filename: str = "fix.go"):
    project = Project.from_source(
        source if source.lstrip().startswith("package") else "package main\n" + source,
        filename,
    )
    result = project.detect()
    bugs = result.bmoc.bmoc_channel_bugs()
    assert bugs, "expected a BMOC bug to fix"
    return project, project.fix(bugs[0])


class TestPatchMechanics:
    def test_replace_line(self):
        patch = Patch("buffer", "t", "a\nb\nc", edits=[LineEdit(line=2, new_lines=["B"])])
        assert patch.apply() == "a\nB\nc"
        assert patch.changed_lines() == 1

    def test_delete_line(self):
        patch = Patch("defer", "t", "a\nb\nc", edits=[LineEdit(line=2, new_lines=[])])
        assert patch.apply() == "a\nc"
        assert patch.changed_lines() == 1

    def test_insert_after(self):
        patch = Patch("stop", "t", "a\nb", edits=[LineEdit(after=1, new_lines=["x", "y"])])
        assert patch.apply() == "a\nx\ny\nb"
        assert patch.changed_lines() == 2

    def test_unified_diff(self):
        patch = Patch("buffer", "t", "a\nb", edits=[LineEdit(line=1, new_lines=["A"])])
        diff = patch.unified_diff("f.go")
        assert "-a" in diff and "+A" in diff

    def test_indent_helper(self):
        assert indent_of("x\n\tfoo\n", 2) == "\t"
        assert line_text("x\nyy\n", 2) == "yy"

    def test_patch_is_idempotent_per_apply(self):
        patch = Patch("buffer", "t", "a\nb", edits=[LineEdit(line=2, new_lines=["B"])])
        assert patch.apply() == patch.apply()


class TestStrategyBuffer:
    def test_figure1_one_line(self, figure1_source):
        project, fix = fix_first(figure1_source)
        assert fix.strategy == "buffer"
        assert fix.patch.changed_lines() == 1
        assert "make(chan int, 1)" in fix.patch.apply()

    def test_patched_program_clean_and_leak_free(self, figure1_source):
        project, fix = fix_first(figure1_source)
        patched = project.apply_fix(fix)
        assert patched.detect().bmoc.reports == []
        runs = patched.stress(entry="main", seeds=15, max_steps=20000)
        assert not any(r.blocked_forever for r in runs)

    def test_rejects_buffered_channel(self):
        # already-buffered channels are not single-sending bugs
        source = (
            "func main() {\n\tch := make(chan int, 1)\n"
            "\tgo func() {\n\t\tch <- 1\n\t\tch <- 2\n\t\tch <- 3\n\t}()\n\t<-ch\n}"
        )
        project = Project.from_source("package main\n" + source)
        bugs = project.detect().bmoc.bmoc_channel_bugs()
        assert bugs
        fix = project.fix(bugs[0])
        assert fix.strategy != "buffer"

    def test_rejects_side_effects_after_o2(self):
        source = (
            "func compute() int {\n\treturn 1\n}\n"
            "func run(ctx context.Context) int {\n"
            "\tout := make(chan int)\n\tshared := 0\n"
            "\tgo func() {\n\t\tout <- compute()\n\t\tshared = 1\n\t}()\n"
            "\tselect {\n\tcase v := <-out:\n\t\treturn v + shared\n"
            "\tcase <-ctx.Done():\n\t\treturn 0\n\t}\n}"
        )
        project, fix = fix_first(source)
        assert not fix.fixed
        assert fix.reason == "side-effects"

    def test_rejects_parent_blocked(self):
        source = (
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tselect {\n\t\tcase ch <- 1:\n\t\tdefault:\n\t\t}\n\t}()\n"
            "\t<-ch\n}"
        )
        project, fix = fix_first(source)
        assert not fix.fixed
        assert fix.reason == "parent-blocked"

    def test_rejects_multiple_children(self):
        source = (
            "func one() int {\n\treturn 1\n}\nfunc two() int {\n\treturn 2\n}\n"
            "func run(ctx context.Context) int {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- one()\n\t}()\n"
            "\tgo func() {\n\t\tch <- two()\n\t}()\n"
            "\tselect {\n\tcase v := <-ch:\n\t\treturn v\n\tcase <-ctx.Done():\n\t\treturn 0\n\t}\n}"
        )
        project, fix = fix_first(source)
        assert not fix.fixed
        assert fix.reason == "complex-goroutines"


class TestStrategyDefer:
    def test_figure3_four_lines(self, figure3_source):
        project, fix = fix_first(figure3_source)
        assert fix.strategy == "defer"
        assert fix.patch.changed_lines() == 4
        patched = fix.patch.apply()
        assert "defer func() {" in patched

    def test_patched_clean(self, figure3_source):
        project, fix = fix_first(figure3_source)
        patched = project.apply_fix(fix)
        assert patched.detect().bmoc.reports == []
        runs = patched.stress(entry="TestRWDialer", seeds=15, max_steps=20000)
        assert not any(r.blocked_forever for r in runs)

    def test_original_send_removed(self, figure3_source):
        project, fix = fix_first(figure3_source)
        patched = fix.patch.apply()
        # the trailing direct send is gone; only the deferred one remains
        tail = patched.split("defer func() {")[1]
        assert tail.count("stop <- struct{}{}") == 1

    def test_variable_payload_placed_after_defining_site(self):
        # §4.3 step 4: o1 sends a variable; the defer goes right after the
        # variable's definition, which dominates all returns
        source = (
            "package main\n\n"
            "func computeTotal() int {\n\treturn 41\n}\n\n"
            "func Run(fail bool) {\n\tfin := make(chan int)\n"
            "\tgo func() {\n\t\tv := <-fin\n\t\tprintln(\"got\", v)\n\t}()\n"
            "\tresult := computeTotal()\n"
            "\tif fail {\n\t\treturn\n\t}\n"
            "\tfin <- result\n}\n"
        )
        project, fix = fix_first(source)
        assert fix.strategy == "defer"
        patched = fix.patch.apply()
        lines = patched.split("\n")
        define_index = next(i for i, l in enumerate(lines) if "result := computeTotal()" in l)
        assert lines[define_index + 1].strip() == "defer func() {"
        assert project.apply_fix(fix).detect().bmoc.reports == []

    def test_variable_payload_without_dominating_definition_rejected(self):
        # the payload variable is defined on only one branch: moving the
        # send would read an undefined value on the other paths
        source = (
            "package main\n\n"
            "func Run2(fail bool) {\n\tfin := make(chan int)\n"
            "\tgo func() {\n\t\t<-fin\n\t}()\n"
            "\tif fail {\n\t\treturn\n\t}\n"
            "\tresult := 7\n\tfin <- result\n}\n"
        )
        project, fix = fix_first(source)
        assert not fix.fixed

    def test_recv_value_used_rejected(self):
        source = (
            "func size() int {\n\treturn 0\n}\n"
            "func item() int {\n\treturn 5\n}\n"
            "func run() int {\n\tn := size()\n\tdata := make(chan int, n)\n"
            "\tgo func() {\n\t\tdata <- item()\n\t}()\n"
            "\tif n > 0 {\n\t\tv := <-data\n\t\treturn v\n\t}\n\treturn 0\n}"
        )
        project, fix = fix_first(source)
        assert not fix.fixed
        assert fix.reason == "recv-value-used"


class TestStrategyStop:
    def test_figure4_stop_channel(self, figure4_source):
        project, fix = fix_first(figure4_source)
        assert fix.strategy == "stop"
        patched = fix.patch.apply()
        assert "stop := make(chan struct{})" in patched
        assert "defer close(stop)" in patched
        assert "case <-stop:" in patched
        assert 5 <= fix.patch.changed_lines() <= 16

    def test_patched_clean_and_leak_free(self, figure4_source):
        project, fix = fix_first(figure4_source)
        patched = project.apply_fix(fix)
        assert patched.detect().bmoc.reports == []
        runs = patched.stress(entry="main", seeds=15, max_steps=20000)
        assert not any(r.blocked_forever for r in runs)

    def test_stop_name_avoids_collision(self, figure4_source):
        shadowed = figure4_source.replace("func Input()", "func stop()")
        project = Project.from_source(shadowed)
        bugs = project.detect().bmoc.bmoc_channel_bugs()
        fix = project.fix(bugs[0])
        assert fix.fixed
        assert "stopCh := make" in fix.patch.apply()


class TestDispatcher:
    def test_strategy_order_prefers_buffer(self, figure1_source):
        # Figure 1 is fixable by both I and III in principle; I wins
        project, fix = fix_first(figure1_source)
        assert fix.strategy == "buffer"

    def test_timings_recorded(self, figure1_source):
        project, fix = fix_first(figure1_source)
        assert fix.preprocess_seconds >= 0
        assert fix.transform_seconds >= 0

    def test_non_channel_bug_rejected(self):
        program = build(
            "func main() {\n\tvar mu sync.Mutex\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tmu.Lock()\n\t\tch <- 1\n\t\tmu.Unlock()\n\t}()\n"
            "\tmu.Lock()\n\t<-ch\n\tmu.Unlock()\n}"
        )
        result = detect_bmoc(program)
        mutex_bugs = result.bmoc_mutex_bugs()
        assert mutex_bugs
        gfix = GFix(program, "")
        fix = gfix.fix(mutex_bugs[0])
        assert not fix.fixed

    def test_fix_all_summary(self, figure1_source):
        project = Project.from_source(figure1_source)
        bugs = project.detect().bmoc.bmoc_channel_bugs()
        summary = project.fix_all(bugs)
        assert len(summary.fixed()) == 1
        assert summary.by_strategy("buffer")
        assert summary.average_changed_lines() == 1.0
