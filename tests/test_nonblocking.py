"""Tests for the §6 extension: non-blocking misuse-of-channel detection."""

from repro.detector.nonblocking import detect_nonblocking
from repro.runtime.scheduler import explore_schedules
from tests.conftest import build


def detect(source: str):
    return detect_nonblocking(build(source))


class TestSendOnClosed:
    def test_race_detected(self):
        result = detect(
            "func main() {\n\tch := make(chan int, 1)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\tclose(ch)\n}"
        )
        assert [r.category for r in result.reports] == ["send-on-closed"]
        assert result.reports[0].blocked_ops[0].kind == "send"

    def test_ordered_send_then_close_safe(self):
        result = detect(
            "func main() {\n\tch := make(chan int)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\t<-ch\n\tclose(ch)\n}"
        )
        assert result.reports == []

    def test_producer_closes_own_channel_safe(self):
        result = detect(
            "func main() {\n\tch := make(chan int, 2)\n"
            "\tgo func() {\n\t\tch <- 1\n\t\tclose(ch)\n\t}()\n"
            "\tfor v := range ch {\n\t\tprintln(v)\n\t}\n}"
        )
        assert result.reports == []

    def test_close_in_parent_before_child_send(self):
        result = detect(
            "func main() {\n\tch := make(chan int, 4)\n\tclose(ch)\n"
            "\tgo func() {\n\t\tch <- 1\n\t}()\n\tprintln(0)\n}"
        )
        assert result.reports
        assert result.reports[0].category == "send-on-closed"


class TestDoubleClose:
    def test_race_detected(self):
        result = detect(
            "func main() {\n\tdone := make(chan struct{})\n"
            "\tgo func() {\n\t\tclose(done)\n\t}()\n\tclose(done)\n}"
        )
        assert [r.category for r in result.reports] == ["double-close"]

    def test_single_close_safe(self):
        result = detect(
            "func main() {\n\tdone := make(chan struct{})\n"
            "\tgo func() {\n\t\tclose(done)\n\t}()\n\t<-done\n}"
        )
        assert result.reports == []

    def test_channel_without_close_ignored(self):
        result = detect(
            "func main() {\n\tch := make(chan int, 1)\n\tch <- 1\n\t<-ch\n}"
        )
        assert result.reports == []


class TestRuntimeAgreement:
    def test_static_verdicts_match_panic_oracle(self):
        cases = [
            (
                "func main() {\n\tch := make(chan int, 1)\n"
                "\tgo func() {\n\t\tch <- 1\n\t}()\n\tclose(ch)\n}",
                True,
            ),
            (
                "func main() {\n\tch := make(chan int)\n"
                "\tgo func() {\n\t\tch <- 1\n\t}()\n\t<-ch\n\tclose(ch)\n}",
                False,
            ),
        ]
        for source, expect in cases:
            program = build(source)
            static = bool(detect_nonblocking(program).reports)
            runs = explore_schedules(program, seeds=30, max_steps=5000)
            dynamic = any(r.panicked for r in runs)
            assert static == expect
            assert dynamic == expect
