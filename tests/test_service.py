"""Tests for the analysis service: protocol, queue, resident project
state, the daemon's methods, crash isolation, and the transports.

The daemon's contract under test:

* the wire protocol rejects garbage with the right error codes and
  never turns a malformed line into a dead connection;
* requests run strictly FIFO, and a request that waits out its deadline
  in the queue is answered with DEADLINE_EXCEEDED without running;
* a crash inside a request becomes a structured incident on *that
  request's* error response — the daemon keeps serving afterwards;
* the daemon's exit-code policy (``exit_code_for``) is the CLI's.
"""

import socket
import threading
import time

import pytest

from repro.resilience.faultinject import injected
from repro.service import (
    AnalysisService,
    ProjectState,
    Request,
    RequestQueue,
    ServiceClient,
    ServiceConnectionError,
    decode_request,
    encode_line,
    exit_code_for,
    serve_stdio,
    serve_tcp,
)
from repro.service.protocol import (
    DEADLINE_EXCEEDED,
    INVALID_PARAMS,
    INVALID_REQUEST,
    METHOD_NOT_FOUND,
    PARSE_ERROR,
    PROTOCOL_VERSION,
    REQUEST_FAILED,
    SHUTTING_DOWN,
    ProtocolError,
)

BUGGY = """package main

func main() {
\tch := make(chan int)
\tgo func() {
\t\tch <- 1
\t}()
}
"""

CLEAN = """package main

func main() {
\tch := make(chan int)
\tgo func() {
\t\tch <- 1
\t}()
\tprintln(<-ch)
}
"""

HELPER = """package main

func helper() int {
\tdone := make(chan int, 1)
\tdone <- 1
\treturn <-done
}
"""


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "buggy.go"
    path.write_text(BUGGY)
    return str(path)


@pytest.fixture
def project_dir(tmp_path):
    root = tmp_path / "proj"
    root.mkdir()
    (root / "main.go").write_text(BUGGY)
    (root / "helper.go").write_text(HELPER)
    return root


@pytest.fixture
def service(buggy_file):
    svc = AnalysisService(buggy_file).start()
    yield svc
    svc.stop()


def ok(response):
    assert "error" not in response, response
    return response["result"]


# -- protocol ---------------------------------------------------------------


class TestProtocol:
    def test_round_trip(self):
        request = decode_request('{"id": 7, "method": "detect", "params": {"strict": true}}')
        assert request.id == 7
        assert request.method == "detect"
        assert request.params == {"strict": True}
        assert request.deadline_seconds is None

    def test_deadline_extracted_from_params(self):
        request = decode_request(
            '{"id": "a", "method": "ping", "params": {"deadline_seconds": 2}}'
        )
        assert request.deadline_seconds == 2.0

    @pytest.mark.parametrize(
        "line,code",
        [
            ("not json at all", PARSE_ERROR),
            ("[1, 2, 3]", INVALID_REQUEST),
            ('{"id": 1}', INVALID_REQUEST),
            ('{"id": {"nested": 1}, "method": "ping"}', INVALID_REQUEST),
            ('{"id": 1, "method": "ping", "params": []}', INVALID_PARAMS),
            (
                '{"id": 1, "method": "ping", "params": {"deadline_seconds": -1}}',
                INVALID_PARAMS,
            ),
            (
                '{"id": 1, "method": "ping", "params": {"deadline_seconds": "5"}}',
                INVALID_PARAMS,
            ),
        ],
    )
    def test_rejects_garbage_with_code(self, line, code):
        with pytest.raises(ProtocolError) as err:
            decode_request(line)
        assert err.value.code == code

    def test_error_keeps_request_id_when_parseable(self):
        with pytest.raises(ProtocolError) as err:
            decode_request('{"id": 42, "params": {}}')
        assert err.value.request_id == 42

    def test_encode_line_is_deterministic(self):
        a = encode_line({"b": 1, "a": 2})
        b = encode_line({"a": 2, "b": 1})
        assert a == b
        assert a.endswith("\n")


# -- queue ------------------------------------------------------------------


class TestRequestQueue:
    def test_fifo_order(self):
        seen = []
        release = threading.Event()

        def handler(request):
            if not seen:
                release.wait(timeout=5)
            seen.append(request.id)
            return {"id": request.id, "result": {}}

        queue = RequestQueue(handler)
        queue.start()
        futures = [queue.submit(Request(id=i, method="ping")) for i in range(5)]
        release.set()
        for future in futures:
            future.result(timeout=5)
        queue.stop()
        assert seen == [0, 1, 2, 3, 4]

    def test_deadline_expires_in_queue_without_running(self):
        ran = []

        def handler(request):
            ran.append(request.id)
            time.sleep(0.1)
            return {"id": request.id, "result": {}}

        queue = RequestQueue(handler)
        queue.start()
        first = queue.submit(Request(id="slow", method="ping"))
        doomed = queue.submit(
            Request(id="doomed", method="ping", deadline_seconds=0.01)
        )
        response = doomed.result(timeout=5)
        assert response["error"]["code"] == DEADLINE_EXCEEDED
        first.result(timeout=5)
        queue.stop()
        assert ran == ["slow"]

    def test_submit_after_stop_refused(self):
        queue = RequestQueue(lambda r: {"id": r.id, "result": {}})
        queue.start()
        queue.stop()
        response = queue.submit(Request(id=1, method="ping")).result(timeout=5)
        assert response["error"]["code"] == SHUTTING_DOWN

    def test_stop_answers_every_queued_request(self):
        """Drain-and-stop: nothing already queued is left hanging — every
        future resolves to a response dict (result or SHUTTING_DOWN)."""
        started = threading.Event()
        release = threading.Event()

        def handler(request):
            started.set()
            release.wait(timeout=5)
            return {"id": request.id, "result": {}}

        queue = RequestQueue(handler)
        queue.start()
        running = queue.submit(Request(id="running", method="ping"))
        waiting = queue.submit(Request(id="waiting", method="ping"))
        started.wait(timeout=5)
        stopper = threading.Thread(target=queue.stop)
        stopper.start()
        release.set()
        stopper.join(timeout=5)
        assert "result" in running.result(timeout=5)
        late = waiting.result(timeout=5)
        assert "result" in late or late["error"]["code"] == SHUTTING_DOWN


# -- resident project state -------------------------------------------------


class TestProjectState:
    def test_load_single_file(self, buggy_file):
        state = ProjectState(buggy_file)
        delta = state.load()
        assert delta.reparsed == 1
        assert state.generation == 1
        assert state.is_single_file
        assert "main" in state.digests

    def test_noop_refresh_keeps_generation(self, buggy_file):
        state = ProjectState(buggy_file)
        state.load()
        program = state.program
        delta = state.refresh()
        assert delta.is_noop()
        assert delta.reparsed == 0
        assert state.generation == 1
        assert state.program is program  # same object, not a rebuild

    def test_edit_reparses_only_changed_file(self, project_dir):
        state = ProjectState(str(project_dir))
        state.load()
        assert state.generation == 1 and len(state.files) == 2
        (project_dir / "main.go").write_text(CLEAN)
        delta = state.refresh()
        assert delta.reparsed == 1
        assert [p.endswith("main.go") for p in delta.changed_files] == [True]
        assert delta.changed_functions  # main's body changed
        assert state.generation == 2

    def test_added_and_removed_files(self, project_dir):
        state = ProjectState(str(project_dir))
        state.load()
        extra = project_dir / "zz_extra.go"
        extra.write_text("package main\n\nfunc extra() {}\n")
        delta = state.refresh()
        assert delta.added_files and delta.added_functions == ["extra"]
        extra.unlink()
        delta = state.refresh()
        assert delta.removed_files and delta.removed_functions == ["extra"]

    def test_broken_edit_keeps_previous_generation(self, buggy_file, tmp_path):
        state = ProjectState(buggy_file)
        state.load()
        program = state.program
        open(buggy_file, "w").write("package main\nfunc main() { !!!! }\n")
        with pytest.raises(Exception):
            state.refresh()
        # crash-safe: the previous generation is still serving
        assert state.generation == 1
        assert state.program is program


# -- the daemon -------------------------------------------------------------


class TestDaemonMethods:
    def test_ping(self, service):
        result = ok(service.call("ping"))
        assert result["protocol"] == PROTOCOL_VERSION
        assert result["generation"] == 1

    def test_detect_finds_bug_with_exit_code(self, service):
        result = ok(service.call("detect"))
        assert result["code"] == 1
        assert result["reports"]
        assert result["shards"]["total"] > 0
        assert result["refresh"]["noop"] is True

    def test_warm_repeat_is_fully_cached(self, service):
        ok(service.call("detect"))
        result = ok(service.call("detect"))
        assert result["shards"]["skip_rate"] == 1.0
        assert result["delta"]["invalidated"] == []
        assert result["delta"]["reused"]

    def test_unknown_method(self, service):
        response = service.call("nonsense")
        assert response["error"]["code"] == METHOD_NOT_FOUND

    def test_fix_on_single_file(self, service):
        result = ok(service.call("fix"))
        assert result["bugs"] == 1 and result["fixed"] == 1
        assert "make(chan int, 1)" in result["fixes"][0]["diff"]

    def test_fix_on_multi_file_project_is_invalid_params(self, project_dir):
        svc = AnalysisService(str(project_dir)).start()
        try:
            response = svc.call("fix")
            assert response["error"]["code"] == INVALID_PARAMS
            # a params error is not a crash: no incident anywhere
            assert "incident" not in response["error"]
            assert not svc.firewall.incidents
        finally:
            svc.stop()

    def test_refresh_reports_delta(self, service, buggy_file):
        ok(service.call("detect"))
        open(buggy_file, "w").write(CLEAN)
        result = ok(service.call("refresh", {"plan": True}))
        assert result["noop"] is False
        assert result["changed_functions"]
        assert result["invalidation"]["total"] > 0

    def test_metrics_exposes_counters_and_cache(self, service):
        ok(service.call("detect"))
        result = ok(service.call("metrics"))
        assert result["counters"]["service.method.detect"] == 1
        assert "cache" in result and result["cache"]["entries"] > 0
        assert result["incidents"] == []

    def test_stats_is_obs_snapshot(self, service):
        ok(service.call("detect"))
        result = ok(service.call("stats"))
        assert result["schema"] == "repro.obs/2"
        assert result["generation"] == 1

    def test_shutdown_flags_service(self, service):
        result = ok(service.call("shutdown"))
        assert result["ok"] and service.shutting_down

    def test_health_matches_cli_semantics(self, service):
        assert ok(service.call("health"))["health"] == "ok"
        ok(service.call("detect"))
        result = ok(service.call("health"))
        assert result["health"] == "ok"
        assert result["code"] == 0  # findings are exit 1 on detect, not health
        assert result["last"]["code"] == 1


class TestCrashIsolation:
    def test_crashed_request_returns_incident_daemon_survives(self, service):
        with injected("service-request@detect:raise:times=1"):
            response = service.call("detect")
        error = response["error"]
        assert error["code"] == REQUEST_FAILED
        assert error["incident"]["site"] == "service-request"
        # the daemon is still serving, and health degraded (not failed)
        result = ok(service.call("detect"))
        assert result["code"] == 1
        health = ok(service.call("health"))
        assert health["health"] in ("ok", "degraded")
        assert health["incidents"] >= 1

    def test_health_degrades_after_crash_without_analysis(self, service):
        with injected("service-request@ping:raise:times=1"):
            assert "error" in service.call("ping")
        health = ok(service.call("health"))
        assert health["health"] == "degraded"
        assert health["code"] == 0

    def test_broken_edit_degrades_detect_not_daemon(self, service, buggy_file):
        baseline = ok(service.call("detect"))
        open(buggy_file, "w").write("package main\nfunc main() { !!!! }\n")
        result = ok(service.call("detect"))
        # refresh failed but the previous generation still answered
        assert result["refresh"]["failed"] is True
        assert result["generation"] == baseline["generation"]
        assert len(result["reports"]) == len(baseline["reports"])
        open(buggy_file, "w").write(BUGGY)
        assert ok(service.call("detect"))["refresh"].get("failed") is None


class TestExitCodePolicy:
    """``exit_code_for`` is the one-shot CLI policy, by construction and
    by test: 0 clean, 1 findings, 3 budget (opt-in), 4 resilience."""

    def test_matches_cli_constants(self):
        from repro.cli import EXIT_INCIDENT, EXIT_TIMEOUT

        assert exit_code_for(0, False, "ok", 0) == 0
        assert exit_code_for(2, False, "ok", 0) == 1
        assert exit_code_for(0, True, "ok", 0) == 0  # timeouts are opt-in
        assert exit_code_for(0, True, "degraded", 1, fail_on_timeout=True) == EXIT_TIMEOUT
        assert exit_code_for(0, False, "degraded", 1) == 0
        assert exit_code_for(0, False, "degraded", 1, strict=True) == EXIT_INCIDENT
        assert exit_code_for(5, False, "failed", 3) == EXIT_INCIDENT


# -- transports -------------------------------------------------------------


class TestStdioTransport:
    def test_serve_lines_until_shutdown(self, buggy_file):
        import io
        import json

        service = AnalysisService(buggy_file).start()
        stdin = io.StringIO(
            '{"id": 1, "method": "ping"}\n'
            "\n"
            "garbage\n"
            '{"id": 2, "method": "shutdown"}\n'
            '{"id": 3, "method": "ping"}\n'  # after shutdown: never served
        )
        stdout = io.StringIO()
        assert serve_stdio(service, stdin=stdin, stdout=stdout) == 0
        lines = [json.loads(l) for l in stdout.getvalue().splitlines()]
        assert [l["id"] for l in lines] == [1, None, 2]
        assert lines[0]["result"]["protocol"] == PROTOCOL_VERSION
        assert lines[1]["error"]["code"] == PARSE_ERROR
        assert lines[2]["result"]["ok"] is True


class TestTcpTransport:
    def test_full_session_over_socket(self, buggy_file):
        service = AnalysisService(buggy_file).start()
        server = serve_tcp(service)
        host, port = server.address
        thread = threading.Thread(target=server.serve_until_shutdown, daemon=True)
        thread.start()
        try:
            with ServiceClient(host, port) as client:
                assert client.result("ping")["protocol"] == PROTOCOL_VERSION
                detect = client.result("detect")
                assert detect["code"] == 1 and detect["reports"]
                # edit to clean over the live daemon
                open(buggy_file, "w").write(CLEAN)
                clean = client.result("detect")
                assert clean["code"] == 0 and not clean["reports"]
                assert clean["refresh"]["noop"] is False
                assert clean["delta"]["invalidated"] or clean["delta"]["added"]
                assert client.result("shutdown")["ok"] is True
        finally:
            thread.join(timeout=10)
            assert not thread.is_alive()

    def test_request_error_is_not_a_dead_connection(self, buggy_file):
        from repro.service import ServiceRequestError

        service = AnalysisService(buggy_file).start()
        server = serve_tcp(service)
        host, port = server.address
        thread = threading.Thread(target=server.serve_until_shutdown, daemon=True)
        thread.start()
        try:
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceRequestError) as err:
                    client.result("nonsense")
                assert err.value.code == METHOD_NOT_FOUND
                # same connection still works
                assert client.result("ping")["ok"] is True
                client.result("shutdown")
        finally:
            thread.join(timeout=10)


class TestConnectRetry:
    """Satellite: the client survives the spawn-then-connect race by
    retrying refused connections with deterministic backoff."""

    @staticmethod
    def _free_port() -> int:
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_connect_retries_until_daemon_binds(self, buggy_file):
        port = self._free_port()
        service = AnalysisService(buggy_file).start()
        server_box = {}

        def bind_late():
            time.sleep(0.2)
            server = serve_tcp(service, port=port)
            server_box["server"] = server
            server.serve_until_shutdown()

        thread = threading.Thread(target=bind_late, daemon=True)
        thread.start()
        try:
            with ServiceClient("127.0.0.1", port, connect_timeout=10.0) as client:
                assert client.connect_attempts > 1
                assert client.result("ping")["ok"] is True
                client.result("shutdown")
        finally:
            thread.join(timeout=10)
            assert not thread.is_alive()

    def test_zero_connect_timeout_fails_on_first_refusal(self):
        port = self._free_port()
        with pytest.raises(ServiceConnectionError) as err:
            ServiceClient("127.0.0.1", port, connect_timeout=0.0)
        assert "after 1 attempt(s)" in str(err.value)

    def test_backoff_sequence_is_deterministic(self):
        port = self._free_port()
        clock = {"now": 0.0}
        slept = []

        def fake_sleep(seconds):
            slept.append(seconds)
            clock["now"] += seconds

        with pytest.raises(ServiceConnectionError):
            ServiceClient(
                "127.0.0.1",
                port,
                connect_timeout=1.0,
                _sleep=fake_sleep,
                _clock=lambda: clock["now"],
            )
        # 0.05 * 2**k until the next delay would cross the deadline
        assert slept == [0.05, 0.1, 0.2, 0.4]


class TestWatcher:
    def test_poll_reports_content_changes_only(self, project_dir):
        from repro.service import Watcher

        watcher = Watcher(str(project_dir))
        assert watcher.poll() == []
        target = project_dir / "main.go"
        target.write_text(CLEAN)
        changed = watcher.poll()
        assert len(changed) == 1 and changed[0].endswith("main.go")
        assert watcher.poll() == []
        # touching mtime without changing bytes is not a change
        import os

        os.utime(target, None)
        assert watcher.poll() == []

    def test_run_watch_detects_edit(self, buggy_file, monkeypatch):
        from repro.service import run_watch

        lines = []
        edited = {"done": False}
        real_sleep = time.sleep

        def sleep_and_edit(seconds):
            if not edited["done"]:
                edited["done"] = True
                open(buggy_file, "w").write(CLEAN)
            real_sleep(0)

        monkeypatch.setattr(time, "sleep", sleep_and_edit)
        code = run_watch(buggy_file, interval=0, max_cycles=2, out=lines.append)
        assert code == 0  # last detect saw the clean program
        text = "\n".join(lines)
        assert "watching" in text
        assert "RESOLVED" in text


# -- request-scoped telemetry (ISSUE 7) --------------------------------------


class TestRequestTelemetry:
    def test_every_response_carries_a_trace_id(self, service):
        for method in ("ping", "detect", "stats", "metrics", "health"):
            response = service.call(method)
            assert isinstance(response.get("trace_id"), str), method
            assert len(response["trace_id"]) == 32

    def test_client_pinned_trace_id_is_echoed(self, service):
        request = decode_request(
            '{"id": 1, "method": "ping", "trace_id": "my-trace-0001"}'
        )
        response = service.queue.call(request)
        assert response["trace_id"] == "my-trace-0001"

    def test_error_responses_carry_trace_ids(self, service):
        # unknown method
        response = service.call("no_such_method")
        assert response["trace_id"]
        # protocol error: even a garbage line gets a trace id
        from repro.service.daemon import _serve_line

        response = _serve_line(service, "this is not json")
        assert response["error"]["code"] == PARSE_ERROR
        assert response["trace_id"]

    def test_deadline_and_shutdown_responses_carry_trace_ids(self, service):
        release = threading.Event()
        first = Request(id=1, method="detect", params={})
        service.queue.submit(first)  # occupy the worker briefly
        expired = Request(id=2, method="ping", deadline_seconds=1e-9)
        response = service.queue.submit(expired).result(timeout=5)
        if "error" in response:  # may have run if the queue was fast
            assert response["error"]["code"] == DEADLINE_EXCEEDED
            assert response["trace_id"] == expired.trace_id
        service.stop()
        refused = Request(id=3, method="ping")
        response = service.queue.submit(refused).result(timeout=5)
        assert response["error"]["code"] == SHUTTING_DOWN
        assert response["trace_id"] == refused.trace_id

    def test_request_span_carries_the_trace_id(self, service):
        response = service.call("detect")
        trace_id = response["trace_id"]
        spans = [
            s
            for s in service.collector.spans
            if s.name == "service-request" and s.trace_id == trace_id
        ]
        assert len(spans) == 1
        # the whole request tree shares the trace, down into the pipeline
        assert all(s.trace_id == trace_id for s in spans[0].walk())
        assert spans[0].attrs["method"] == "detect"

    def test_request_latency_and_stage_dists_accumulate(self, service):
        service.call("detect")
        service.call("detect")
        dists = service.collector.dists
        assert dists["service.request.seconds"].count >= 2
        assert dists["service.queue.wait_seconds"].count >= 2
        assert any(name.startswith("stage.") for name in dists)

    def test_metrics_text_serves_valid_prometheus(self, service):
        ok(service.call("detect"))
        result = ok(service.call("metrics_text"))
        from repro.obs import validate_exposition

        assert result["content_type"].startswith("text/plain")
        text = result["text"]
        assert validate_exposition(text) == []
        assert "repro_service_requests_total" in text
        assert "repro_service_request_seconds_bucket" in text
        for q in ("p50", "p95", "p99"):
            assert f"repro_service_request_seconds_{q} " in text


class TestTelemetryJournal:
    def test_daemon_journals_one_record_per_request(self, buggy_file, tmp_path):
        journal_path = str(tmp_path / "telemetry.jsonl")
        svc = AnalysisService(buggy_file, journal_path=journal_path).start()
        try:
            r1 = svc.call("detect")
            r2 = svc.call("ping")
        finally:
            svc.stop()
        records = svc.journal.read()
        assert [r["method"] for r in records] == ["detect", "ping"]
        assert records[0]["trace_id"] == r1["trace_id"]
        assert records[1]["trace_id"] == r2["trace_id"]
        detect = records[0]
        assert detect["outcome"] == "ok"
        assert detect["elapsed_seconds"] > 0
        assert detect["reports"] == 1
        assert detect["generation"] == 1
        assert "gcatch" in detect["stages"]

    def test_journal_survives_daemon_restart(self, buggy_file, tmp_path):
        journal_path = str(tmp_path / "telemetry.jsonl")
        svc = AnalysisService(buggy_file, journal_path=journal_path).start()
        svc.call("detect")
        svc.stop()
        svc = AnalysisService(buggy_file, journal_path=journal_path).start()
        svc.call("detect")
        svc.stop()
        records = svc.journal.read()
        assert len(records) == 2  # both generations of the daemon

    def test_slow_requests_capture_span_tree_exemplars(self, buggy_file, tmp_path):
        svc = AnalysisService(
            buggy_file,
            journal_path=str(tmp_path / "t.jsonl"),
            slow_threshold_seconds=0.0,  # everything is "slow"
        ).start()
        try:
            response = svc.call("detect")
            stats = ok(svc.call("stats"))
        finally:
            svc.stop()
        # stats exposes the exemplar ring (the stats request itself is
        # also "slow" under a zero threshold, hence >= 1)
        assert len(stats["exemplars"]) >= 1
        assert stats["exemplars"][0]["trace_id"] == response["trace_id"]
        assert len(svc.exemplars) >= 1
        exemplar = next(
            e for e in svc.exemplars if e["trace_id"] == response["trace_id"]
        )
        assert exemplar["spans"]["name"] == "service-request"
        # evidence pointers reach the engine's shard spans
        names = set()

        def collect(span):
            names.add(span["name"])
            for child in span.get("children", ()):
                collect(child)

        collect(exemplar["spans"])
        assert "gcatch" in names
        # the journal record carries the same exemplar, flagged slow
        record = next(
            r
            for r in svc.journal.read()
            if r["trace_id"] == response["trace_id"]
        )
        assert record["slow"] is True
        assert record["exemplar"]["trace_id"] == response["trace_id"]

    def test_fast_requests_do_not_journal_exemplars(self, buggy_file, tmp_path):
        svc = AnalysisService(
            buggy_file, journal_path=str(tmp_path / "t.jsonl")
        ).start()
        try:
            svc.call("ping")
        finally:
            svc.stop()
        record = svc.journal.read()[-1]
        assert "slow" not in record and "exemplar" not in record
        assert not svc.exemplars

    def test_journal_rotation_under_load(self, buggy_file, tmp_path):
        journal_path = str(tmp_path / "t.jsonl")
        svc = AnalysisService(
            buggy_file,
            journal_path=journal_path,
            journal_max_bytes=2_000,
            journal_max_files=2,
        ).start()
        try:
            for _ in range(100):
                svc.call("ping")
        finally:
            svc.stop()
        import os

        files = svc.journal.files()
        assert len(files) == 2
        assert all(os.path.getsize(f) <= 2_000 for f in files)
        assert all(r["method"] == "ping" for r in svc.journal.read())
