"""Tests for the systematic schedule explorer (the dynamic oracle)."""

import pytest

from repro.runtime.explorer import CONFLICT_ALL, explore, independent, outcome_signature
from repro.runtime.scheduler import run_program
from repro.ssa.builder import build_program

# A rare race: the leak needs the background writer to win ~6 consecutive
# scheduling picks before main reads ``e``, so random sampling almost never
# sees it (the first leaking seed is 51), while systematic search proves it
# in ~a dozen runs.
RARE_RACE = """package main

func waitStop(stop chan int) {
	<-stop
}

func main() {
	stop := make(chan int)
	e := 0
	go waitStop(stop)
	go func() {
		d := 0
		d = d + 1
		d = d + 1
		d = d + 1
		e = 1
	}()
	if e == 0 {
		stop <- 1
	}
	println("done", e)
}
"""

# Two tiny programs whose *unpruned* schedule space is still enumerable, for
# checking that sleep-set pruning drops redundant orders but no outcomes.
TINY_RACE = """package main

func main() {
	x := 0
	done := make(chan int, 1)
	go func() {
		x = 1
		done <- 1
	}()
	y := x
	<-done
	println(y)
}
"""

TINY_SELECT = """package main

func main() {
	a := make(chan int, 1)
	b := make(chan int, 1)
	a <- 1
	b <- 2
	select {
	case v := <-a:
		println("a", v)
	case v := <-b:
		println("b", v)
	}
}
"""

CLEAN = """package main

func main() {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	println(<-ch)
}
"""

LEAKY = """package main

func worker(ch chan int) {
	ch <- 1
}

func main() {
	ch := make(chan int)
	go worker(ch)
	println("done")
}
"""


class TestExhaustiveBeatsSampling:
    def test_random_seeds_miss_the_rare_leak(self):
        program = build_program(RARE_RACE, "rare.go")
        for seed in range(20):
            outcome = run_program(program, seed=seed)
            assert not outcome.blocked_forever, f"seed {seed} unexpectedly leaked"

    def test_exploration_proves_the_rare_leak(self):
        program = build_program(RARE_RACE, "rare.go")
        exploration = explore(program)
        assert exploration.complete
        assert exploration.any_leak
        leak = exploration.leaking()[0]
        assert leak.leaked[0].function == "waitStop"
        # the witness is a reproducible trace, not a lucky seed
        assert leak.choice_trace

    def test_clean_program_proven_leak_free(self):
        exploration = explore(build_program(CLEAN, "clean.go"))
        assert exploration.complete
        assert exploration.leak_free
        assert not exploration.any_leak


class TestPruningSoundness:
    @pytest.mark.parametrize(
        "source,name",
        [(TINY_RACE, "tiny_race.go"), (TINY_SELECT, "tiny_select.go")],
    )
    def test_pruned_and_unpruned_agree_on_outcomes(self, source, name):
        program = build_program(source, name)
        pruned = explore(program, max_runs=4096, prune=True)
        unpruned = explore(program, max_runs=4096, prune=False)
        assert pruned.complete and unpruned.complete
        assert set(pruned.signatures()) == set(unpruned.signatures())
        assert pruned.runs <= unpruned.runs

    def test_pruning_saves_runs_under_contention(self):
        program = build_program(TINY_RACE, "tiny_race.go")
        pruned = explore(program, max_runs=4096, prune=True)
        unpruned = explore(program, max_runs=4096, prune=False)
        assert pruned.complete and unpruned.complete
        assert pruned.runs < unpruned.runs

    def test_tiny_race_sees_both_values(self):
        exploration = explore(build_program(TINY_RACE, "tiny_race.go"))
        outputs = {sig[0] for sig in exploration.signatures()}
        assert ("0",) in outputs and ("1",) in outputs

    def test_select_explores_both_cases(self):
        exploration = explore(build_program(TINY_SELECT, "tiny_select.go"))
        outputs = {sig[0] for sig in exploration.signatures()}
        assert ("a 1",) in outputs and ("b 2",) in outputs


class TestBoundsHonesty:
    def test_run_budget_marks_incomplete(self):
        exploration = explore(build_program(RARE_RACE, "rare.go"), max_runs=2)
        assert not exploration.complete
        assert not exploration.leak_free  # no proof from a truncated search

    def test_preemption_bound_zero_truncates(self):
        program = build_program(RARE_RACE, "rare.go")
        bounded = explore(program, preemption_bound=0)
        assert not bounded.complete

    def test_leaky_program_counts_schedules(self):
        exploration = explore(build_program(LEAKY, "leaky.go"))
        assert exploration.complete
        assert exploration.any_leak
        assert exploration.runs >= 2  # at least the leak and the clean order
        assert len(exploration.outcomes) >= 1

    def test_render_mentions_leak(self):
        exploration = explore(build_program(LEAKY, "leaky.go"))
        text = exploration.render()
        assert "LEAK" in text
        assert "worker" in text


class TestIndependence:
    def test_disjoint_footprints_commute(self):
        assert independent(frozenset({("io",)}), frozenset({("Channel", 1)}))

    def test_overlap_conflicts(self):
        fp = frozenset({("Channel", 1)})
        assert not independent(fp, fp)

    def test_wildcard_conflicts_with_everything(self):
        assert not independent(frozenset({CONFLICT_ALL}), frozenset())

    def test_signature_is_gid_free(self):
        program = build_program(LEAKY, "leaky.go")
        a = run_program(program, seed=0)
        b = run_program(program, seed=3)
        if a.blocked_forever == b.blocked_forever:
            assert outcome_signature(a) == outcome_signature(b)


@pytest.mark.slow
class TestCorpusConfirmation:
    def test_every_detectable_bug_dynamically_confirmed(self):
        from repro.corpus.bugset import build_bug_set

        for case in build_bug_set():
            if not case.detectable:
                continue
            program = build_program(case.source, case.case_id + ".go")
            exploration = explore(program, entry=case.driver or "main")
            assert exploration.any_leak, f"{case.case_id}: no leaking schedule found"
