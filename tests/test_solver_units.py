"""Direct unit tests for the constraint solver on hand-built systems.

These bypass the frontend and path enumeration entirely: occurrences are
constructed by hand, so each test pins one rule of the paper's §3.4
semantics (buffer counting, rendezvous matching, close, mutex-as-channel,
waitgroup counters, cond recipe).
"""

from typing import List, Optional

from repro.analysis.alias import Site
from repro.analysis.primitives import Primitive
from repro.constraints.encoding import ConstraintSystem, Occurrence, StopPoint
from repro.constraints.solver import solve
from repro.constraints.variables import OrderVar
from repro.detector.paths import OpEvent, SelectChoice


def make_prim(label: str, kind: str = "chan") -> Primitive:
    return Primitive(site=Site(kind, "f", 1, label))


def op(kind: str, prim: Primitive, line: int = 0) -> OpEvent:
    return OpEvent(kind=kind, prim=prim, line=line, instr=None)


def system_of(
    goroutines: List[List[object]],
    stops: Optional[List[StopPoint]] = None,
    buffers: Optional[dict] = None,
) -> ConstraintSystem:
    system = ConstraintSystem(stops=stops or [])
    occ_id = 0
    for gid, events in enumerate(goroutines):
        occs = []
        for event in events:
            occurrence = Occurrence(occ_id=occ_id, gid=gid, event=event)
            occurrence.order_var = OrderVar(occ_id)
            occ_id += 1
            occs.append(occurrence)
            system.occurrences.append(occurrence)
        system.per_goroutine[gid] = occs
        system.spawn_of[gid] = None
    for prim in system.primitives():
        system.buffer_sizes[prim] = (buffers or {}).get(prim.site.label, 0)
    return system


class TestChannelRules:
    def test_unbuffered_send_needs_rendezvous(self):
        ch = make_prim("ch")
        # send alone cannot complete
        solo = system_of([[op("send", ch)]])
        assert solve(solo) is None
        # send + recv in another goroutine completes via a match
        paired = system_of([[op("send", ch)], [op("recv", ch)]])
        solution = solve(paired)
        assert solution is not None
        assert len(solution.matches) == 1

    def test_buffered_send_completes_alone(self):
        ch = make_prim("ch")
        system = system_of([[op("send", ch)]], buffers={"ch": 1})
        solution = solve(system)
        assert solution is not None
        assert solution.final_states["ch"] == (1, False)

    def test_buffer_capacity_respected(self):
        ch = make_prim("ch")
        two_sends = system_of([[op("send", ch), op("send", ch)]], buffers={"ch": 1})
        assert solve(two_sends) is None
        with_recv = system_of(
            [[op("send", ch), op("send", ch)], [op("recv", ch)]], buffers={"ch": 1}
        )
        assert solve(with_recv) is not None

    def test_recv_from_closed_proceeds(self):
        ch = make_prim("ch")
        system = system_of([[op("close", ch), op("recv", ch)]])
        solution = solve(system)
        assert solution is not None
        assert solution.final_states["ch"][1] is True  # closed

    def test_recv_before_close_in_same_goroutine_stuck(self):
        ch = make_prim("ch")
        system = system_of([[op("recv", ch), op("close", ch)]])
        assert solve(system) is None

    def test_stop_send_blocked_on_full_channel(self):
        ch = make_prim("ch")
        stop = StopPoint(gid=0, event=op("send", ch))
        # goroutine 0 first fills the buffer, then would block at the stop
        system = system_of(
            [[op("send", ch)]], stops=[stop], buffers={"ch": 1}
        )
        solution = solve(system)
        assert solution is not None  # CB == BS: blocked, Φ_B holds

    def test_stop_send_not_blocked_when_space(self):
        ch = make_prim("ch")
        stop = StopPoint(gid=0, event=op("send", ch))
        system = system_of([[]], stops=[stop], buffers={"ch": 1})
        assert solve(system) is None  # buffer empty: the send would proceed

    def test_stop_recv_not_blocked_when_closed(self):
        ch = make_prim("ch")
        stop = StopPoint(gid=1, event=op("recv", ch))
        system = system_of([[op("close", ch)], []], stops=[stop])
        assert solve(system) is None


class TestMutexRules:
    def test_lock_unlock_sequence(self):
        mu = make_prim("mu", "mutex")
        system = system_of([[op("lock", mu), op("unlock", mu)]])
        assert solve(system) is not None

    def test_unlock_without_lock_stuck(self):
        mu = make_prim("mu", "mutex")
        system = system_of([[op("unlock", mu)]])
        assert solve(system) is None

    def test_double_lock_stuck(self):
        mu = make_prim("mu", "mutex")
        system = system_of([[op("lock", mu), op("lock", mu)]])
        assert solve(system) is None

    def test_cross_goroutine_handoff(self):
        mu = make_prim("mu", "mutex")
        system = system_of(
            [[op("lock", mu)], [op("unlock", mu)]]
        )
        # goroutine 1 can only unlock after goroutine 0 locked
        assert solve(system) is not None

    def test_stop_lock_blocked_while_held(self):
        mu = make_prim("mu", "mutex")
        stop = StopPoint(gid=1, event=op("lock", mu))
        system = system_of([[op("lock", mu)], []], stops=[stop])
        assert solve(system) is not None

    def test_rlock_shared_then_writer_blocked(self):
        mu = make_prim("mu", "rwmutex")
        stop = StopPoint(gid=1, event=op("lock", mu))
        system = system_of([[op("rlock", mu)], []], stops=[stop])
        assert solve(system) is not None


class TestWaitGroupRules:
    def test_wait_proceeds_at_zero(self):
        wg = make_prim("wg", "waitgroup")
        system = system_of([[op("wait", wg)]])
        assert solve(system) is not None

    def test_wait_needs_done_after_add(self):
        wg = make_prim("wg", "waitgroup")
        stuck = system_of([[op("add", wg), op("wait", wg)]])
        assert solve(stuck) is None
        freed = system_of([[op("add", wg), op("wait", wg)], [op("done", wg)]])
        assert solve(freed) is not None

    def test_stop_wait_blocked_with_positive_counter(self):
        wg = make_prim("wg", "waitgroup")
        stop = StopPoint(gid=0, event=op("wait", wg))
        system = system_of([[op("add", wg)]], stops=[stop])
        assert solve(system) is not None


class TestCondRules:
    def test_wait_needs_simultaneous_signal(self):
        cond = make_prim("c", "cond")
        stuck = system_of([[op("condwait", cond)]])
        assert solve(stuck) is None
        paired = system_of([[op("condwait", cond)], [op("signal", cond)]])
        assert solve(paired) is not None

    def test_signal_never_blocks(self):
        cond = make_prim("c", "cond")
        system = system_of([[op("signal", cond), op("signal", cond)]])
        assert solve(system) is not None

    def test_stopped_wait_always_blocked(self):
        cond = make_prim("c", "cond")
        stop = StopPoint(gid=0, event=op("condwait", cond))
        system = system_of([[]], stops=[stop])
        assert solve(system) is not None


class TestSelectStops:
    def test_select_stop_blocked_when_all_cases_blocked(self):
        ch = make_prim("ch")
        case = op("recv", ch)
        choice = SelectChoice(instr=None, line=0, chosen=case, pset_cases=[case])
        stop = StopPoint(gid=0, event=choice)
        system = system_of([[]], stops=[stop])
        assert solve(system) is not None

    def test_select_stop_not_blocked_with_other_cases(self):
        ch = make_prim("ch")
        case = op("recv", ch)
        choice = SelectChoice(
            instr=None, line=0, chosen=case, pset_cases=[case], has_other_cases=True
        )
        stop = StopPoint(gid=0, event=choice)
        system = system_of([[]], stops=[stop])
        # blocking cannot be proven when a non-Pset case exists
        assert solve(system) is None

    def test_select_stop_not_blocked_when_case_ready(self):
        ch = make_prim("ch")
        case = op("recv", ch)
        choice = SelectChoice(instr=None, line=0, chosen=case, pset_cases=[case])
        stop = StopPoint(gid=0, event=choice)
        system = system_of([[op("send", ch)]], stops=[stop], buffers={"ch": 1})
        assert solve(system) is None


class TestWitnessShape:
    def test_schedule_covers_all_occurrences(self):
        ch = make_prim("ch")
        system = system_of([[op("send", ch)], [op("recv", ch)]])
        solution = solve(system)
        assert solution is not None
        assert len(solution.schedule) == 2
        orders = solution.order_assignment()
        # the matched pair shares one order value
        assert len(set(orders.values())) == 1
