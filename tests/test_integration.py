"""Integration tests: the full pipeline on the figures and corpus subsets,
asserting the reproduced evaluation numbers against the paper."""

import pytest

from repro.api import Project, detect_and_fix
from repro.corpus.snippets import ALL_SNIPPETS
from repro.report.experiments import evaluate_app, evaluate_corpus
from repro.corpus.apps import corpus_app


class TestFigurePipelines:
    @pytest.mark.parametrize("sn", ALL_SNIPPETS, ids=lambda s: s.name)
    def test_detect_fix_validate(self, sn):
        project = Project.from_source(sn.source, sn.name + ".go")
        entry = "main" if "main" in project.program.functions else sn.entry
        # detect: exactly one channel bug, on the expected line
        result = project.detect()
        bugs = result.bmoc.bmoc_channel_bugs()
        assert len(bugs) == 1
        buggy_lines = [
            i + 1 for i, text in enumerate(sn.source.split("\n")) if sn.buggy_line_marker in text
        ]
        assert any(line in buggy_lines for line in bugs[0].lines)
        # fix with the expected strategy
        fix = project.fix(bugs[0])
        assert fix.strategy == sn.expected_strategy
        # the original program leaks on some schedule; the patch never does
        original_runs = project.stress(entry=entry, seeds=20, max_steps=20000)
        assert any(r.blocked_forever for r in original_runs)
        patched = project.apply_fix(fix)
        assert patched.detect().bmoc.reports == []
        patched_runs = patched.stress(entry=entry, seeds=20, max_steps=20000)
        assert not any(r.blocked_forever for r in patched_runs)

    def test_one_shot_pipeline(self):
        summary = detect_and_fix(ALL_SNIPPETS[0].source)
        assert len(summary.fixed()) == 1


class TestCorpusEvaluation:
    @pytest.mark.parametrize("name", ["bbolt", "gRPC", "Prometheus", "HUGO", "frp"])
    def test_app_matches_its_table1_row(self, name):
        app = corpus_app(name)
        evaluation = evaluate_app(app)
        spec = app.spec
        assert evaluation.bmoc_counts("bmoc-chan") == (spec.bmoc_c.real, spec.bmoc_c.fp)
        assert evaluation.bmoc_counts("bmoc-mutex") == (spec.bmoc_m.real, spec.bmoc_m.fp)
        for category, cell in (
            ("forget-unlock", spec.forget_unlock),
            ("double-lock", spec.double_lock),
            ("conflict-lock", spec.conflict_lock),
            ("struct-race", spec.struct_field),
            ("fatal-goroutine", spec.fatal),
        ):
            assert evaluation.traditional_verdicts[category] == (cell.real, cell.fp), category
        fixes = evaluation.fix_counts()
        assert fixes["buffer"] == spec.fix_s1
        assert fixes["defer"] == spec.fix_s2
        assert fixes["stop"] == spec.fix_s3

    def test_unfixed_reasons_match_spec(self):
        app = corpus_app("Go")
        evaluation = evaluate_app(app)
        reasons = {}
        for fix in evaluation.unfixed():
            reasons[fix.reason] = reasons.get(fix.reason, 0) + 1
        assert reasons == dict(app.spec.unfixable)

    def test_subset_table_renders(self):
        evaluation = evaluate_corpus(names=["bbolt", "Gin"])
        text = evaluation.render()
        assert "bbolt" in text and "Gin" in text and "Total" in text

    def test_patches_are_correct_on_one_app(self):
        """Every generated patch removes the bug without new reports."""
        app = corpus_app("gRPC")
        evaluation = evaluate_app(app)
        project = Project.from_source(app.source, "gRPC.go")
        for fix in evaluation.fixes:
            if not fix.fixed:
                continue
            patched_source = fix.patch.apply()
            patched = Project.from_source(patched_source, "patched.go")
            patched_eval = patched.detect()
            # the patched channel no longer produces a report
            fixed_label = fix.report.primitive.site.label
            remaining = [
                r
                for r in patched_eval.bmoc.reports
                if r.primitive is not None and r.primitive.site.label == fixed_label
            ]
            assert remaining == []
