"""SolverSession property tests (repro.constraints.session).

Two properties, checked over 200 seeded fuzz-generator programs:

* **interning is invisible** — every group decided through a batched
  session produces exactly the outcome a fresh classic ``encode`` +
  ``solve_detailed`` produces on the same (combination, group): same
  verdict, same node and clause counts, and a byte-identical witness
  rendering. The interned attempt estimates the session writes into a
  group's StopPoints match what classic encoding re-derives.
* **push/pop leaks nothing** — every scope opened by ``solve_group`` is
  closed on return (depth ends at 0, even across memo hits), and a
  group's verdict is independent of the order groups were solved in: a
  fresh session fed the same groups in reverse produces the same
  outcomes, so nothing one group asserts survives into a sibling's
  scope.
"""

from __future__ import annotations

import pytest

from repro.constraints.encoding import encode
from repro.constraints.session import SolverSession
from repro.constraints.solver import solve_detailed
from repro.detector import bmoc as bmoc_module
from repro.detector.bmoc import BMOCDetector
from repro.fuzz import generate_program
from repro.ssa.builder import build_program

#: campaign seed reserved for this suite; (seed, index) replays any program
CAMPAIGN_SEED = 11
PROGRAM_COUNT = 200


class RecordingSession(SolverSession):
    """A SolverSession that journals every group solve it performs."""

    live = []

    def __init__(self, collector=None):
        super().__init__(collector)
        self.calls = []
        RecordingSession.live.append(self)

    def solve_group(self, combo, group, max_nodes=None):
        outcome = super().solve_group(combo, group, max_nodes=max_nodes)
        self.calls.append((combo, list(group), max_nodes, outcome))
        return outcome


def outcome_fingerprint(outcome):
    return (
        outcome.outcome,
        outcome.nodes,
        outcome.clauses,
        outcome.solution.render() if outcome.solution else None,
        sorted(outcome.solution.order_assignment().items())
        if outcome.solution
        else None,
    )


def recorded_sessions(monkeypatch, source, name):
    """Run one batched detect with journaling sessions; return them."""
    RecordingSession.live = []
    monkeypatch.setattr(bmoc_module, "SolverSession", RecordingSession)
    program = build_program(source, name)
    detector = BMOCDetector(program, solver_mode="batched")
    detector.detect()
    return [s for s in RecordingSession.live if s.calls]


def fuzz_indices():
    # spread across the campaign so template/mutation coverage is wide
    return range(PROGRAM_COUNT)


@pytest.mark.parametrize("chunk", range(10))
def test_session_outcomes_match_classic_encode_solve(chunk, monkeypatch):
    """Interned vs not: identical formulas, identical verdicts."""
    groups_checked = 0
    for index in fuzz_indices():
        if index % 10 != chunk:
            continue
        generated = generate_program(CAMPAIGN_SEED, index)
        sessions = recorded_sessions(monkeypatch, generated.source, generated.name)
        for session in sessions:
            assert session.depth == 0  # every push was popped
            for combo, group, max_nodes, outcome in session.calls:
                groups_checked += 1
                interned_attempts = [stop.attempts for stop in group]
                system = encode(combo, group, None)
                classic = solve_detailed(system, None, max_nodes=max_nodes)
                assert outcome_fingerprint(outcome) == outcome_fingerprint(classic)
                # classic encoding re-derived every attempts estimate the
                # session had interned; both must agree on the formula
                assert [stop.attempts for stop in group] == interned_attempts
    assert groups_checked > 0  # the campaign slice exercised the solver


@pytest.mark.parametrize("chunk", range(4))
def test_no_leakage_across_group_scopes(chunk, monkeypatch):
    """Order independence: re-solving the journal in reverse through a
    fresh session reproduces every verdict — no group's constraints leak
    into a sibling's scope, memo hits included."""
    replayed = 0
    for index in fuzz_indices():
        if index % 4 != chunk or index % 3 != 0:  # a 1-in-3 sample per chunk
            continue
        generated = generate_program(CAMPAIGN_SEED, index)
        sessions = recorded_sessions(monkeypatch, generated.source, generated.name)
        for session in sessions:
            fresh = SolverSession()
            for combo, group, max_nodes, outcome in reversed(session.calls):
                redo = fresh.solve_group(combo, group, max_nodes=max_nodes)
                assert outcome_fingerprint(redo) == outcome_fingerprint(outcome)
                assert fresh.depth == 0
                replayed += 1
    assert replayed > 0


def test_group_key_is_stable_and_memo_reuses(monkeypatch):
    """The structural key is deterministic, and re-solving the same group
    in the same session is a memo hit that returns the same object."""
    seen_reuse = False
    for index in (0, 3, 7, 12, 25):
        generated = generate_program(CAMPAIGN_SEED, index)
        sessions = recorded_sessions(monkeypatch, generated.source, generated.name)
        for session in sessions:
            # copy: the re-solve below appends to the journal being walked
            for combo, group, max_nodes, outcome in list(session.calls):
                key1 = session.group_key(combo, group, max_nodes)
                key2 = session.group_key(combo, group, max_nodes)
                assert key1 == key2
                before = session.reuse
                again = session.solve_group(combo, group, max_nodes=max_nodes)
                assert session.reuse == before + 1
                assert again is session._memo[key1]
                assert outcome_fingerprint(again) == outcome_fingerprint(outcome)
                seen_reuse = True
    assert seen_reuse
