"""Fuzz campaigns: determinism, triage buckets, crash isolation, CLI.

The campaign's core contract is the one the issue states as acceptance:
the triage is a *pure function of the seed* — identical across reruns
and across engine parallelism — and a crash in any generated program is
an isolated bucket, never a dead campaign.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import _fuzz_exit, main
from repro.fuzz import (
    BUCKET_AGREE,
    BUCKET_EXPLAINED,
    BUCKET_INCIDENT,
    BUCKET_PARSE_CRASH,
    BUCKET_UNEXPLAINED,
    BUCKETS,
    generate_program,
    minimize_program,
    run_campaign,
    triage_program,
)
from repro.fuzz.campaign import CampaignConfig
from repro.obs import Collector, snapshot
from repro.resilience.faultinject import injected

SMOKE_COUNT = 25


@pytest.fixture(scope="module")
def smoke_report():
    """One seed-0 campaign shared by the read-only assertions."""
    return run_campaign(0, SMOKE_COUNT)


class TestDeterminism:
    def test_rerun_is_identical(self, smoke_report):
        again = run_campaign(0, SMOKE_COUNT)
        assert [t.to_dict() for t in again.triages] == [
            t.to_dict() for t in smoke_report.triages
        ]

    def test_jobs_do_not_change_triage(self, smoke_report):
        sharded = run_campaign(0, SMOKE_COUNT, config=CampaignConfig(jobs=4))
        assert [t.to_dict() for t in sharded.triages] == [
            t.to_dict() for t in smoke_report.triages
        ]

    def test_seed_changes_triage(self, smoke_report):
        other = run_campaign(1, SMOKE_COUNT)
        assert [t.name for t in other.triages] != [
            t.name for t in smoke_report.triages
        ]


class TestBuckets:
    def test_every_triage_lands_in_a_bucket(self, smoke_report):
        for triage in smoke_report.triages:
            assert triage.bucket in BUCKETS

    def test_seed_zero_smoke_is_crash_free(self, smoke_report):
        buckets = smoke_report.buckets()
        assert buckets[BUCKET_PARSE_CRASH] == 0
        assert buckets[BUCKET_INCIDENT] == 0
        assert buckets[BUCKET_UNEXPLAINED] == 0
        assert not smoke_report.crashes()

    def test_population_exercises_agreement_and_explained(self, smoke_report):
        buckets = smoke_report.buckets()
        assert buckets[BUCKET_AGREE] > 0
        assert buckets[BUCKET_EXPLAINED] > 0

    def test_explained_rows_carry_a_cause(self, smoke_report):
        for triage in smoke_report.by_bucket(BUCKET_EXPLAINED):
            assert triage.explanation  # never silently explained

    def test_agreement_rate_counts_classified_programs(self, smoke_report):
        assert 0.0 < smoke_report.agreement_rate <= 1.0

    def test_json_report_shape(self, smoke_report):
        payload = smoke_report.to_json()
        assert payload["kind"] == "fuzz-campaign"
        assert payload["seed"] == 0
        assert payload["count"] == SMOKE_COUNT
        assert set(payload["buckets"]) == set(BUCKETS)
        assert payload["unexplained"] == []
        assert payload["crashes"] == []
        assert len(payload["triages"]) == SMOKE_COUNT
        json.dumps(payload)  # must be serializable as-is

    def test_render_summarizes_buckets(self, smoke_report):
        text = smoke_report.render()
        assert f"{SMOKE_COUNT} program(s)" in text
        assert "agreement rate:" in text
        assert "unexplained: 0" in text


class TestKnownFindings:
    """The detector-gap shapes the hunt surfaced (see
    repro.corpus.regressions for their checked-in minimal forms)."""

    def test_buffered_pump_finding_is_closed(self):
        """Once a dynamic-only FN (the hunt's buffered multi-op shape);
        the repeatable-send rule now sees the leak, so the oracles agree
        on the very program that surfaced the gap."""
        triage = triage_program(generate_program(3, 153))
        assert triage.bucket == "agree"
        assert triage.classification == "agree-bug"
        assert "bmocc_s3_pump" in triage.templates
        assert "M0:buffer-grow" in triage.mutations

    def test_dropped_close_finding_is_closed(self):
        """Once a static-only FP (dead quit arm let BMOC's witness skip
        the rescuing data arm); the dead-select-arm pruning rule no
        longer enumerates the infeasible path, so the oracles agree."""
        triage = triage_program(generate_program(8, 137))
        assert triage.bucket == "agree"
        assert triage.classification == "agree-clean"
        assert not triage.static_bug
        assert triage.templates == ("bmocc_s1_race",)
        assert triage.mutations == ("M0:drop-close",)


class TestCrashIsolation:
    def test_injected_crash_becomes_one_bucket_not_a_dead_campaign(self):
        with injected("fuzz-program@fuzz-s0-p3:raise"):
            report = run_campaign(0, 6)
        assert [t.bucket for t in report.triages].count(BUCKET_PARSE_CRASH) == 1
        assert report.triages[3].bucket == BUCKET_PARSE_CRASH
        assert "injected fault" in report.triages[3].error
        assert report.triages[3].incidents
        # the other five programs triage exactly as without the fault
        clean = run_campaign(0, 6)
        for i in (0, 1, 2, 4, 5):
            assert report.triages[i].to_dict() == clean.triages[i].to_dict()

    def test_degraded_static_verdict_is_an_incident_not_a_claim(self):
        # detection survives a solver crash behind its own firewall, but
        # a degraded static verdict must not anchor a differential claim
        with injected("solve:raise"):
            triage = triage_program(generate_program(0, 0))
        assert triage.bucket == BUCKET_INCIDENT
        assert triage.incidents
        assert not triage.classification

    def test_campaign_counts_buckets_in_trace(self):
        collector = Collector("fuzz-test")
        report = run_campaign(0, 4, collector=collector)
        counters = snapshot(collector)["counters"]
        assert counters["fuzz.programs"] == 4
        assert report.trace is collector


class TestMinimizer:
    def test_shrinks_to_the_single_culprit_motif(self):
        program = generate_program(5, 88)  # 4 motifs, one mutated 3 ways
        reference = triage_program(program)
        minimal = minimize_program(program, reference)
        assert len(minimal.motifs) == 1
        assert minimal.motifs[0].template == "bmocc_s1_race"
        assert minimal.motifs[0].mutations == ("drop-close",)
        # the minimal recipe still reproduces the finding
        again = triage_program(minimal)
        assert again.bucket == reference.bucket
        assert again.classification == reference.classification

    def test_closed_gap_program_shrinks_past_its_old_culprit(self):
        """(3, 153) used to shrink to pump+buffer-grow — the exact recipe
        that needed the buffered-send rule. With the gap closed even the
        unmutated pump is an agreed bug, so the minimizer sheds the
        mutation too."""
        program = generate_program(3, 153)
        reference = triage_program(program)
        assert reference.bucket == BUCKET_AGREE
        minimal = minimize_program(program, reference)
        assert [m.template for m in minimal.motifs] == ["bmocc_s3_pump"]
        assert minimal.motifs[0].mutations == ()

    def test_already_minimal_recipe_is_a_fixpoint(self):
        program = generate_program(8, 137)  # 1 motif, 1 mutation
        reference = triage_program(program)
        minimal = minimize_program(program, reference)
        assert minimal.motifs == program.motifs


class TestFuzzCommand:
    def test_clean_campaign_exits_zero(self, capsys):
        code = main(["fuzz", "--seed", "0", "--count", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "agreement rate:" in out

    def test_json_campaign_report(self, capsys):
        code = main(["fuzz", "--seed", "0", "--count", "5", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["kind"] == "fuzz-campaign"
        assert len(payload["triages"]) == 5
        assert "stats" in payload  # --json runs under a collector

    def test_closed_finding_exits_zero(self, capsys):
        """The once-unexplained (seed 8, index 137) program now agrees,
        so replaying it is a clean exit; the exit policy itself still
        maps unexplained findings to 1 and crashes to 2."""
        code = main(["fuzz", "--seed", "8", "--only", "137", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["bucket"] == "agree"
        assert _fuzz_exit(unexplained=True, crashed=False) == 1
        assert _fuzz_exit(unexplained=True, crashed=True) == 4

    def test_only_replays_one_program(self, capsys):
        code = main(["fuzz", "--seed", "0", "--only", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "package main" in out  # the replayed source is printed

    def test_dump_dir_writes_provenance_header(self, tmp_path, capsys):
        code = main([
            "fuzz", "--seed", "8", "--only", "137",
            "--dump-dir", str(tmp_path),
        ])
        assert code == 0  # the once-open finding now agrees
        dumped = tmp_path / "fuzz-s8-p137.go"
        text = dumped.read_text()
        assert text.startswith("// fuzz-s8-p137: generated by `repro fuzz --seed 8 --only 137`")
        assert "// recipe: bmocc_s1_race[M0 inline drop-close]" in text
        assert "package main" in text

    def test_minimize_flag_is_a_noop_on_agreed_programs(self, tmp_path, capsys):
        """Minimization only fires on unexplained findings; an agreed
        program dumps with its full original recipe untouched."""
        code = main([
            "fuzz", "--seed", "5", "--only", "88", "--minimize",
            "--dump-dir", str(tmp_path),
        ])
        assert code == 0
        text = (tmp_path / "fuzz-s5-p88.go").read_text()
        assert "bmocc_s1_race[M3 inline buffer-grow,buffer-shrink,drop-close]" in text
        assert "benign_compute[M0 nested]" in text  # nothing was shed

    def test_campaign_crash_exits_with_incident_code(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "fuzz-program@fuzz-s0-p1:raise")
        code = main(["fuzz", "--seed", "0", "--count", "3"])
        capsys.readouterr()
        assert code == 4  # EXIT_INCIDENT: crashes trump findings
